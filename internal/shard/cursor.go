package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"conceptrank/internal/core"
	"conceptrank/internal/corpus"
	"conceptrank/internal/ontology"
	"conceptrank/internal/pool"
)

// Cursor is a resumable sharded kNDS query: one core.Cursor per non-empty
// shard plus the cross-shard merger, held open so a caller can take the
// global top-k now and grow to k' > k later. Growing resumes every shard
// from its saved frontier — including shards the cross-shard bound paused,
// whose pause proof (everything they could still produce is outside the
// global top-k) expires when k grows — and rebuilds the merger from the
// exact distances the shards have already paid for, so the grown result is
// bitwise identical to a fresh sharded query with Options.K = k'.
//
// Method semantics mirror core.Cursor: Next pages through the merged
// ranking, GrowK extends it, context errors are resumable at shard wave
// boundaries, and Close releases every shard cursor.
type Cursor struct {
	mu sync.Mutex // serializes the public API; held across segment runs

	e      *Engine
	sds    bool
	k      int
	served int
	done   bool // current-k run has terminated; results is valid
	closed bool
	failed error // sticky non-context error

	results []core.Result
	sm      *Metrics
	start     time.Time     // open time: the At reference for dispatch/merge events
	elapsed   time.Duration // accumulated segment wall-clock → Merged.TotalTime
	mergeTime time.Duration // accumulated cross-shard merge time → Merged.Stages[StageMerge]

	curs []*core.Cursor // nil for empty shards

	callerTrace core.TraceFunc
	traceMu     sync.Mutex // serializes forwarded span events across shards

	// Shard goroutines touch the merge state through the OnBound /
	// Progressive hooks while runTo holds c.mu across the segment, so that
	// state lives under its own lock.
	segMu       sync.Mutex
	merger      *core.Merger
	offered     map[corpus.DocID]bool // global IDs already offered to merger
	paused      []bool                // paused by the bound in the current k-epoch
	cancels     []context.CancelFunc  // current segment's per-shard cancels
	pausedTotal int                   // lifetime pauses → Metrics.CancelledShards
}

// OpenRDS plans a relevant-document query across all shards and returns a
// cursor positioned before the first merged result. No traversal runs
// until the first Next, GrowK or Run call.
func (e *Engine) OpenRDS(q []ontology.ConceptID, opts core.Options) (*Cursor, error) {
	return e.open(false, q, opts)
}

// OpenSDS plans a similar-document query across all shards; see OpenRDS.
func (e *Engine) OpenSDS(queryDoc []ontology.ConceptID, opts core.Options) (*Cursor, error) {
	return e.open(true, queryDoc, opts)
}

// open validates the query, plans one core cursor per non-empty shard and
// installs the merge hooks. Per-query callbacks in opts (Progressive,
// OnWave, OnBound) are owned by the sharded engine, as in RDSContext;
// Options.Trace is forwarded with TraceEvent.Shard stamped.
func (e *Engine) open(sds bool, rawQuery []ontology.ConceptID, opts core.Options) (*Cursor, error) {
	if opts.Workers < 0 {
		return nil, core.ErrNegativeWorkers
	}
	if opts.Workers == 0 {
		opts.Workers = 1 // the shard fan-out already fills the cores
	}
	if len(rawQuery) == 0 {
		return nil, core.ErrEmptyQuery
	}
	for _, cc := range rawQuery {
		if int(cc) >= e.o.NumConcepts() {
			return nil, fmt.Errorf("shard: query concept %d outside ontology", cc)
		}
	}
	opts = opts.Normalize()

	c := &Cursor{
		e: e, sds: sds, k: opts.K,
		sm:          &Metrics{PerShard: make([]core.Metrics, len(e.shards))},
		start:       time.Now(),
		curs:        make([]*core.Cursor, len(e.shards)),
		merger:      core.NewMerger(opts.K),
		offered:     make(map[corpus.DocID]bool),
		paused:      make([]bool, len(e.shards)),
		cancels:     make([]context.CancelFunc, len(e.shards)),
		callerTrace: opts.Trace,
	}
	for s := range e.shards {
		if e.counts[s]() == 0 {
			continue // empty shard: nothing to search, nothing to cancel
		}
		s := s
		so := opts
		so.OnWave = nil
		so.Trace = nil
		if c.callerTrace != nil {
			c.emit(core.TraceEvent{Kind: core.TraceShardDispatch, At: time.Since(c.start), Shard: s})
			so.Trace = func(ev core.TraceEvent) {
				ev.Shard = s
				c.emit(ev)
			}
		}
		so.Progressive = func(r core.Result) {
			// Results are provably final when emitted, so offering them as
			// they appear keeps the merged k-th distance — the cross-shard
			// cancellation bound — as tight as the shards' progress allows.
			// The offered set guards against re-offering after a GrowK
			// merger rebuild (the merger heap has no dedup of its own).
			gr := core.Result{Doc: e.mapper.global(s, r.Doc), Distance: r.Distance}
			c.segMu.Lock()
			if !c.offered[gr.Doc] {
				c.offered[gr.Doc] = true
				c.merger.Offer(gr)
			}
			c.segMu.Unlock()
		}
		so.OnBound = func(dMinus float64) {
			c.segMu.Lock()
			if c.paused[s] {
				c.segMu.Unlock()
				return
			}
			full, kth := c.merger.Full(), c.merger.Kth()
			cancel := c.cancels[s]
			if full && dMinus > kth && cancel != nil {
				// Every result this shard could still produce has distance
				// >= d⁻ > the merged k-th — pause the shard. Its cursor
				// state survives the cancellation, so a later GrowK (which
				// invalidates this proof) resumes it mid-traversal.
				c.paused[s] = true
				c.pausedTotal++
				c.segMu.Unlock()
				cancel()
				return
			}
			c.segMu.Unlock()
		}
		var cur *core.Cursor
		var err error
		if sds {
			cur, err = e.shards[s].OpenSDS(rawQuery, so)
		} else {
			cur, err = e.shards[s].OpenRDS(rawQuery, so)
		}
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		c.curs[s] = cur
	}
	return c, nil
}

func (c *Cursor) emit(ev core.TraceEvent) {
	if c.callerTrace == nil {
		return
	}
	c.traceMu.Lock()
	c.callerTrace(ev)
	c.traceMu.Unlock()
}

// Next returns the next n merged results in ranked order, growing k as
// needed. A short or empty page means the union collection holds no more
// rankable documents. On a context error the page position does not
// advance and the call can be retried.
func (c *Cursor) Next(ctx context.Context, n int) ([]core.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, core.ErrCursorClosed
	}
	if n <= 0 {
		return nil, nil
	}
	target := c.served + n
	if err := c.runTo(ctx, target); err != nil {
		return nil, err
	}
	if c.served >= len(c.results) {
		return nil, nil // drained
	}
	end := target
	if end > len(c.results) {
		end = len(c.results)
	}
	page := c.results[c.served:end]
	c.served = end
	return page, nil
}

// GrowK extends the merged ranking to the top k, resuming every shard from
// its saved state, and returns the full result list (bitwise identical to
// a fresh sharded query with Options.K = k). It does not consume the Next
// page position.
func (c *Cursor) GrowK(ctx context.Context, k int) ([]core.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, core.ErrCursorClosed
	}
	if err := c.runTo(ctx, k); err != nil {
		return nil, err
	}
	return c.results, nil
}

// Run drives the query to termination at the current k and returns the
// merged results and metrics. RDSContext is Open + Run + Close.
func (c *Cursor) Run(ctx context.Context) ([]core.Result, *Metrics, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, c.sm, core.ErrCursorClosed
	}
	if err := c.runTo(ctx, c.k); err != nil {
		return nil, c.sm, err
	}
	return c.results, c.sm, nil
}

// runTo grows to target if needed and runs a segment to termination.
// Caller holds c.mu.
func (c *Cursor) runTo(ctx context.Context, target int) error {
	if c.failed != nil {
		return c.failed
	}
	if target > c.k {
		// Growing past a merger the union could not fill finds nothing new.
		if !(c.done && len(c.results) < c.k) {
			c.grow(target)
		}
	}
	if c.done {
		return nil
	}
	segStart := time.Now()
	defer func() { c.elapsed += time.Since(segStart) }()

	g, gctx := pool.GroupWithContext(ctx)
	live := 0
	for s, cur := range c.curs {
		if cur == nil {
			continue
		}
		c.segMu.Lock()
		paused := c.paused[s]
		c.segMu.Unlock()
		if paused {
			continue // the bound proof for this k still stands
		}
		live++
		s, cur := s, cur
		sctx, cancel := context.WithCancel(gctx)
		c.segMu.Lock()
		c.cancels[s] = cancel
		c.segMu.Unlock()
		g.Go(func() error {
			defer cancel()
			_, m, err := cur.Run(sctx)
			if m != nil {
				c.sm.PerShard[s] = *m
			}
			if err != nil {
				c.segMu.Lock()
				paused := c.paused[s]
				c.segMu.Unlock()
				if paused && errors.Is(err, context.Canceled) {
					// Stopped by the cross-shard bound, not by the caller:
					// everything relevant was already merged.
					return nil
				}
				return fmt.Errorf("shard %d: %w", s, err)
			}
			return nil
		})
	}
	err := g.Wait()
	c.segMu.Lock()
	for s := range c.cancels {
		c.cancels[s] = nil
	}
	c.segMu.Unlock()
	if err != nil {
		if !ctxResumable(err) {
			c.failed = err
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	mergeStart := time.Now()
	c.results = c.merger.Sorted()
	merged := core.Metrics{}
	for i := range c.sm.PerShard {
		mergeMetrics(&merged, &c.sm.PerShard[i])
	}
	// The cross-shard merge is the one stage shards cannot see; attribute
	// it here — accumulated across segments like elapsed, because merged
	// is rebuilt from the per-shard metrics on every segment.
	c.mergeTime += time.Since(mergeStart)
	merged.Stages[core.StageMerge].Time += c.mergeTime
	c.segMu.Lock()
	cancelled := c.pausedTotal
	c.segMu.Unlock()
	merged.TotalTime = c.elapsed + time.Since(segStart)
	merged.ResultCount = len(c.results)
	c.sm.Merged = merged
	c.sm.CancelledShards = cancelled
	c.emit(core.TraceEvent{
		Kind:  core.TraceShardMerge,
		At:    time.Since(c.start),
		Shard: -1,
		N:     live,
		Value: float64(cancelled),
	})
	c.done = true
	return nil
}

// grow raises k, rebuilds the merger from every shard's archive of exact
// distances, and unpauses every shard. Caller holds c.mu; no segment is
// running, so the shard cursors are quiescent.
func (c *Cursor) grow(k int) {
	c.k = k
	c.done = false
	c.results = nil
	merger := core.NewMerger(k)
	offered := make(map[corpus.DocID]bool)
	for s, cur := range c.curs {
		if cur == nil {
			continue
		}
		cur.Grow(k)
		// Re-seed the merger with the exact distances this shard already
		// paid for: its progressive hook only emits each result once per
		// query lifetime, so results emitted before the grow would
		// otherwise be lost to the fresh merger.
		for _, r := range cur.Examined() {
			gr := core.Result{Doc: c.e.mapper.global(s, r.Doc), Distance: r.Distance}
			if !offered[gr.Doc] {
				offered[gr.Doc] = true
				merger.Offer(gr)
			}
		}
	}
	c.segMu.Lock()
	c.merger = merger
	c.offered = offered
	for s := range c.paused {
		c.paused[s] = false
	}
	c.segMu.Unlock()
}

// K returns the current merged result capacity.
func (c *Cursor) K() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.k
}

// Results returns the merged results of the latest completed run (nil
// before the first run or after a grow). Treat as read-only.
func (c *Cursor) Results() []core.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.results
}

// Metrics returns the sharded metrics, accumulated across every run
// segment so far. The pointer stays live; snapshot it for a fixed view.
func (c *Cursor) Metrics() *Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sm
}

// Close releases every shard cursor. Closing twice is a no-op.
func (c *Cursor) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	for _, cur := range c.curs {
		if cur != nil {
			cur.Close()
		}
	}
	c.closed = true
	return nil
}

func ctxResumable(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
