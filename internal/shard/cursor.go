package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"conceptrank/internal/core"
	"conceptrank/internal/ontology"
)

// Cursor is a resumable sharded kNDS query: one core.Cursor per non-empty
// shard plus the cross-shard merger, held open so a caller can take the
// global top-k now and grow to k' > k later. Growing resumes every shard
// from its saved frontier — including shards the cross-shard bound paused,
// whose pause proof (everything they could still produce is outside the
// global top-k) expires when k grows — and rebuilds the merger from the
// exact distances the shards have already paid for, so the grown result is
// bitwise identical to a fresh sharded query with Options.K = k'.
//
// The merge/resume loop itself lives in Fanout: Cursor wires core.Cursors
// into it as in-process FanoutShards; the distributed coordinator
// (internal/cluster) wires remote cursors into the same loop.
//
// Method semantics mirror core.Cursor: Next pages through the merged
// ranking, GrowK extends it, context errors are resumable at shard wave
// boundaries, and Close releases every shard cursor.
type Cursor struct {
	mu sync.Mutex // serializes the public API; held across segment runs

	f      *Fanout
	served int
	closed bool

	start time.Time // open time: the At reference for dispatch/merge events

	callerTrace core.TraceFunc
	traceMu     sync.Mutex // serializes forwarded span events across shards
}

// localShard adapts one shard's core.Cursor to the FanoutShard interface:
// its progressive hook (installed at open) offers global-ID results into
// the shared MergeState, its bound hook pauses the shard when the
// cross-shard proof holds, and Run distinguishes a bound pause from a
// caller cancellation.
type localShard struct {
	s      int
	cur    *core.Cursor
	ms     *MergeState
	mapper docMapper

	mu     sync.Mutex // guards cancel (set per segment, read by the bound hook)
	cancel context.CancelFunc
}

func (ls *localShard) Run(ctx context.Context) (bool, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ls.mu.Lock()
	ls.cancel = cancel
	ls.mu.Unlock()
	_, _, err := ls.cur.Run(sctx)
	ls.mu.Lock()
	ls.cancel = nil
	ls.mu.Unlock()
	if err != nil {
		if ls.ms.Paused(ls.s) && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// Stopped by the cross-shard bound, not by the caller:
			// everything relevant was already merged.
			return false, nil
		}
		return false, fmt.Errorf("shard %d: %w", ls.s, err)
	}
	return true, nil
}

// onBound is the Options.OnBound hook: pause this shard once its
// termination floor provably exceeds the merged k-th distance. The
// cursor state survives the cancellation, so a later GrowK (which
// invalidates the proof) resumes it mid-traversal.
func (ls *localShard) onBound(dMinus float64) {
	if ls.ms.PauseIfBeyond(ls.s, dMinus) {
		ls.mu.Lock()
		cancel := ls.cancel
		ls.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// offer is the Options.Progressive hook: results are provably final when
// emitted, so offering them as they appear keeps the merged k-th distance
// — the cross-shard cancellation bound — as tight as the shards' progress
// allows.
func (ls *localShard) offer(r core.Result) {
	ls.ms.Offer(core.Result{Doc: ls.mapper.global(ls.s, r.Doc), Distance: r.Distance})
}

func (ls *localShard) Grow(_ context.Context, k int) error {
	ls.cur.Grow(k)
	return nil
}

func (ls *localShard) Examined(_ context.Context) ([]core.Result, error) {
	ex := ls.cur.Examined()
	out := make([]core.Result, len(ex))
	for i, r := range ex {
		out[i] = core.Result{Doc: ls.mapper.global(ls.s, r.Doc), Distance: r.Distance}
	}
	return out, nil
}

func (ls *localShard) Metrics() core.Metrics {
	if m := ls.cur.Metrics(); m != nil {
		return *m
	}
	return core.Metrics{}
}

func (ls *localShard) Close() error { return ls.cur.Close() }

// OpenRDS plans a relevant-document query across all shards and returns a
// cursor positioned before the first merged result. No traversal runs
// until the first Next, GrowK or Run call.
func (e *Engine) OpenRDS(q []ontology.ConceptID, opts core.Options) (*Cursor, error) {
	return e.open(false, q, opts)
}

// OpenSDS plans a similar-document query across all shards; see OpenRDS.
func (e *Engine) OpenSDS(queryDoc []ontology.ConceptID, opts core.Options) (*Cursor, error) {
	return e.open(true, queryDoc, opts)
}

// open validates the query, plans one core cursor per non-empty shard and
// installs the merge hooks. Per-query callbacks in opts (Progressive,
// OnWave, OnBound) are owned by the sharded engine, as in RDSContext;
// Options.Trace is forwarded with TraceEvent.Shard stamped.
func (e *Engine) open(sds bool, rawQuery []ontology.ConceptID, opts core.Options) (*Cursor, error) {
	if opts.Workers < 0 {
		return nil, core.ErrNegativeWorkers
	}
	if opts.Workers == 0 {
		opts.Workers = 1 // the shard fan-out already fills the cores
	}
	if len(rawQuery) == 0 {
		return nil, core.ErrEmptyQuery
	}
	for _, cc := range rawQuery {
		if int(cc) >= e.o.NumConcepts() {
			return nil, fmt.Errorf("shard: query concept %d outside ontology", cc)
		}
	}
	opts = opts.Normalize()

	c := &Cursor{
		start:       time.Now(),
		callerTrace: opts.Trace,
	}
	// The Fanout owns the slice: filling entries below works because the
	// backing array is shared, and the hooks wire to its MergeState.
	shards := make([]FanoutShard, len(e.shards))
	f := NewFanout(shards, opts.K)
	for s := range e.shards {
		if e.counts[s]() == 0 {
			continue // empty shard: nothing to search, nothing to cancel
		}
		s := s
		ls := &localShard{s: s, ms: f.MergeState(), mapper: e.mapper}
		so := opts
		so.OnWave = nil
		so.Trace = nil
		if c.callerTrace != nil {
			c.emit(core.TraceEvent{Kind: core.TraceShardDispatch, At: time.Since(c.start), Shard: s})
			so.Trace = func(ev core.TraceEvent) {
				ev.Shard = s
				c.emit(ev)
			}
		}
		so.Progressive = ls.offer
		so.OnBound = ls.onBound
		var cur *core.Cursor
		var err error
		if sds {
			cur, err = e.shards[s].OpenSDS(rawQuery, so)
		} else {
			cur, err = e.shards[s].OpenRDS(rawQuery, so)
		}
		if err != nil {
			for _, sh := range shards {
				if sh != nil {
					_ = sh.Close()
				}
			}
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		ls.cur = cur
		shards[s] = ls
	}
	f.OnMerge = func(live, cancelled int) {
		c.emit(core.TraceEvent{
			Kind:  core.TraceShardMerge,
			At:    time.Since(c.start),
			Shard: -1,
			N:     live,
			Value: float64(cancelled),
		})
	}
	c.f = f
	return c, nil
}

// NewFanoutCursor wraps an already-wired Fanout in the public cursor API —
// the constructor the distributed coordinator uses to speak the exact
// cursor/page protocol of the in-process sharded engine over its remote
// fan-out.
func NewFanoutCursor(f *Fanout) *Cursor {
	return &Cursor{start: time.Now(), f: f}
}

func (c *Cursor) emit(ev core.TraceEvent) {
	if c.callerTrace == nil {
		return
	}
	c.traceMu.Lock()
	c.callerTrace(ev)
	c.traceMu.Unlock()
}

// Next returns the next n merged results in ranked order, growing k as
// needed. A short or empty page means the union collection holds no more
// rankable documents. On a context error the page position does not
// advance and the call can be retried.
func (c *Cursor) Next(ctx context.Context, n int) ([]core.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, core.ErrCursorClosed
	}
	if n <= 0 {
		return nil, nil
	}
	target := c.served + n
	if err := c.f.RunTo(ctx, target); err != nil {
		return nil, err
	}
	results := c.f.Results()
	if c.served >= len(results) {
		return nil, nil // drained
	}
	end := target
	if end > len(results) {
		end = len(results)
	}
	page := results[c.served:end]
	c.served = end
	return page, nil
}

// GrowK extends the merged ranking to the top k, resuming every shard from
// its saved state, and returns the full result list (bitwise identical to
// a fresh sharded query with Options.K = k). It does not consume the Next
// page position.
func (c *Cursor) GrowK(ctx context.Context, k int) ([]core.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, core.ErrCursorClosed
	}
	if err := c.f.RunTo(ctx, k); err != nil {
		return nil, err
	}
	return c.f.Results(), nil
}

// Run drives the query to termination at the current k and returns the
// merged results and metrics. RDSContext is Open + Run + Close.
func (c *Cursor) Run(ctx context.Context) ([]core.Result, *Metrics, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, c.f.Metrics(), core.ErrCursorClosed
	}
	if err := c.f.RunTo(ctx, c.f.K()); err != nil {
		return nil, c.f.Metrics(), err
	}
	return c.f.Results(), c.f.Metrics(), nil
}

// K returns the current merged result capacity.
func (c *Cursor) K() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.K()
}

// Results returns the merged results of the latest completed run (nil
// before the first run or after a grow). Treat as read-only.
func (c *Cursor) Results() []core.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Results()
}

// Metrics returns the sharded metrics, accumulated across every run
// segment so far. The pointer stays live; snapshot it for a fixed view.
func (c *Cursor) Metrics() *Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Metrics()
}

// Close releases every shard cursor. Closing twice is a no-op.
func (c *Cursor) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.f.Close()
}

func ctxResumable(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
