package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"conceptrank/internal/core"
	"conceptrank/internal/corpus"
	"conceptrank/internal/ontology"
	"conceptrank/internal/store"
)

// Shard-aware disk layout: SaveIndexes writes, per shard, one inverted and
// one forward postings file plus a docmap file (the strictly increasing
// local→global DocID map, stored as a single block in the standard store
// format), all described by a JSON manifest:
//
//	shards.json
//	shard-0000.inverted.crs   shard-0000.forward.crs   shard-0000.docmap.crs
//	shard-0001.inverted.crs   ...
//
// OpenDisk reads the manifest back into an Engine whose shards are backed
// by the disk stores, with per-query I/O time attributed per shard.

// ManifestFile is the name of the sharded-layout manifest inside a
// directory written by SaveIndexes.
const ManifestFile = "shards.json"

// manifestVersion guards against future layout changes.
const manifestVersion = 1

type manifest struct {
	Version   int    `json:"version"`
	Shards    int    `json:"shards"`
	Placement string `json:"placement"`
	NumDocs   int    `json:"num_docs"`
}

func shardFile(s int, kind string) string {
	return fmt.Sprintf("shard-%04d.%s.crs", s, kind)
}

// SaveIndexes partitions coll per cfg and writes the sharded index layout
// into dir (created if missing).
func SaveIndexes(dir string, coll *corpus.Collection, cfg Config) error {
	colls, maps, err := Partition(coll, cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for s, c := range colls {
		if err := store.BuildInvertedFile(filepath.Join(dir, shardFile(s, "inverted")), c); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		if err := store.BuildForwardFile(filepath.Join(dir, shardFile(s, "forward")), c); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		globals := make([]uint32, len(maps[s]))
		for i, g := range maps[s] {
			globals[i] = uint32(g)
		}
		err := store.WriteAll(filepath.Join(dir, shardFile(s, "docmap")), func(append func(uint32, []uint32) error) error {
			return append(0, globals)
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	mf, err := json.MarshalIndent(manifest{
		Version:   manifestVersion,
		Shards:    cfg.Shards,
		Placement: cfg.Placement.String(),
		NumDocs:   coll.NumDocs(),
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestFile), append(mf, '\n'), 0o644)
}

// OpenDisk opens a sharded engine over a directory written by SaveIndexes.
// cacheBlocks bounds each store file's block cache (0 disables caching).
func OpenDisk(o *ontology.Ontology, dir string, cacheBlocks int) (*Engine, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	var mf manifest
	if err := json.Unmarshal(raw, &mf); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %w", err)
	}
	if mf.Version != manifestVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d", mf.Version)
	}
	if mf.Shards < 1 {
		return nil, fmt.Errorf("shard: manifest declares %d shards", mf.Shards)
	}
	e := &Engine{o: o}
	ok := false
	defer func() {
		if !ok {
			e.Close()
		}
	}()
	maps := make(staticMapper, mf.Shards)
	for s := 0; s < mf.Shards; s++ {
		io := &store.IOStats{}
		inv, err := store.OpenInverted(filepath.Join(dir, shardFile(s, "inverted")), io, cacheBlocks)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		e.closers = append(e.closers, inv.Close)
		fwd, err := store.OpenForward(filepath.Join(dir, shardFile(s, "forward")), io, cacheBlocks)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		e.closers = append(e.closers, fwd.Close)
		dm, err := store.Open(filepath.Join(dir, shardFile(s, "docmap")), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		globals, err := dm.Lookup(0)
		dm.Close() // the docmap is fully decoded; no need to keep it open
		if err != nil {
			return nil, fmt.Errorf("shard %d: docmap: %w", s, err)
		}
		maps[s] = make([]corpus.DocID, len(globals))
		for i, g := range globals {
			maps[s][i] = corpus.DocID(g)
		}
		n := len(globals)
		e.shards = append(e.shards, core.NewEngine(o, inv, fwd, n, io))
		e.counts = append(e.counts, func() int { return n })
	}
	e.mapper = maps
	ok = true
	return e, nil
}
