package shard

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"conceptrank/internal/core"
	"conceptrank/internal/ontology"
)

// TestDiskRoundTrip: SaveIndexes → OpenDisk must answer queries bitwise
// identically to the in-memory single engine, for both placements, with
// per-shard I/O attributed in the metrics.
func TestDiskRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	o := randomDAGOntology(r, 60, 0.3)
	coll := randomCollection(r, o, 35, 6)
	single := singleEngine(o, coll)
	q := []ontology.ConceptID{1, 2, 5}
	opts := core.Options{K: 6, ErrorThreshold: 0.5}
	want, _, err := single.RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range allPlacements {
		dir := filepath.Join(t.TempDir(), "idx-"+p.String())
		cfg := Config{Shards: 3, Placement: p}
		if err := SaveIndexes(dir, coll, cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err != nil {
			t.Fatalf("manifest missing: %v", err)
		}
		for s := 0; s < cfg.Shards; s++ {
			for _, kind := range []string{"inverted", "forward", "docmap"} {
				if _, err := os.Stat(filepath.Join(dir, shardFile(s, kind))); err != nil {
					t.Fatalf("shard file missing: %v", err)
				}
			}
		}

		de, err := OpenDisk(o, dir, 64)
		if err != nil {
			t.Fatal(err)
		}
		if de.NumShards() != cfg.Shards || de.NumDocs() != coll.NumDocs() {
			t.Fatalf("reopened engine: %d shards, %d docs", de.NumShards(), de.NumDocs())
		}
		got, sm, err := de.RDS(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "disk "+p.String(), want, got)
		if sm.Merged.IOTime <= 0 {
			t.Errorf("disk engine reported no I/O time: %+v", sm.Merged)
		}
		// SDS round-trip too (exercises the disk forward index).
		wantSDS, _, err := single.SDS(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotSDS, _, err := de.SDS(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "disk sds "+p.String(), wantSDS, gotSDS)
		if err := de.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenDiskErrors(t *testing.T) {
	if _, err := OpenDisk(nil, filepath.Join(t.TempDir(), "nope"), 0); err == nil {
		t.Fatal("missing manifest must fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(nil, dir, 0); err == nil {
		t.Fatal("corrupt manifest must fail")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte(`{"version":99,"shards":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(nil, dir, 0); err == nil {
		t.Fatal("unsupported version must fail")
	}
}
