package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"conceptrank/internal/core"
	"conceptrank/internal/ontology"
)

// TestShardedTraceForwarding checks the sharded trace contract: every
// non-empty shard gets a ShardDispatch event, forwarded per-shard events
// carry that shard's index, the stream ends with a single ShardMerge whose
// N is the fan-out width, and each dispatched shard contributes a terminal
// event whose ε_d max-merges into Merged.TerminalEps.
func TestShardedTraceForwarding(t *testing.T) {
	r := rand.New(rand.NewSource(2014))
	o := randomDAGOntology(r, 80, 0.25)
	coll := randomCollection(r, o, 60, 6)
	se, err := New(o, coll, Config{Shards: 4, Placement: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}

	var events []core.TraceEvent
	opts := core.Options{
		K: 5, ErrorThreshold: 0.5, Workers: 2,
		// Appends need no lock: the sharded engine serializes delivery.
		Trace: func(ev core.TraceEvent) { events = append(events, ev) },
	}
	_, sm, err := se.RDS([]ontology.ConceptID{1, 7, 19}, opts)
	if err != nil {
		t.Fatal(err)
	}

	dispatched := map[int]bool{}
	terminalEps := map[int]float64{}
	merges := 0
	for i, ev := range events {
		switch ev.Kind {
		case core.TraceShardDispatch:
			if ev.Shard < 0 || ev.Shard >= se.NumShards() {
				t.Fatalf("event %d: dispatch for shard %d", i, ev.Shard)
			}
			dispatched[ev.Shard] = true
		case core.TraceShardMerge:
			merges++
			if i != len(events)-1 {
				t.Fatalf("ShardMerge at position %d of %d, want last", i, len(events))
			}
			if ev.Shard != -1 {
				t.Fatalf("ShardMerge carries Shard = %d, want -1", ev.Shard)
			}
			if ev.N != len(dispatched) {
				t.Fatalf("ShardMerge.N = %d, want fan-out width %d", ev.N, len(dispatched))
			}
			if int(ev.Value) != sm.CancelledShards {
				t.Fatalf("ShardMerge.Value = %v, CancelledShards = %d", ev.Value, sm.CancelledShards)
			}
		default:
			// A forwarded per-shard event: must carry a dispatched shard.
			if !dispatched[ev.Shard] {
				t.Fatalf("event %d (%v) from shard %d before its dispatch", i, ev.Kind, ev.Shard)
			}
			if ev.Kind == core.TraceTerminate {
				terminalEps[ev.Shard] = ev.Value
			}
		}
	}
	if merges != 1 {
		t.Fatalf("got %d ShardMerge events, want 1", merges)
	}
	if len(dispatched) == 0 {
		t.Fatal("no ShardDispatch events")
	}

	// Merged.TerminalEps is the max across shards, matching the per-shard
	// terminal events (shards cancelled by the cross-shard bound emit no
	// terminal event and contribute no slack).
	var wantEps float64
	for _, e := range terminalEps {
		if e > wantEps {
			wantEps = e
		}
	}
	if sm.Merged.TerminalEps != wantEps {
		t.Fatalf("Merged.TerminalEps = %v, max per-shard terminal ε_d = %v", sm.Merged.TerminalEps, wantEps)
	}
	for s, e := range terminalEps {
		if sm.PerShard[s].TerminalEps != e {
			t.Fatalf("shard %d: terminal event ε_d %v != PerShard TerminalEps %v", s, e, sm.PerShard[s].TerminalEps)
		}
	}
}

// TestShardedTraceNilHook: an untraced sharded query must not fabricate
// events (guards the nil fast path around the forwarding closure).
func TestShardedTraceNilHook(t *testing.T) {
	r := rand.New(rand.NewSource(2015))
	o := randomDAGOntology(r, 40, 0.2)
	coll := randomCollection(r, o, 20, 4)
	se, err := New(o, coll, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := se.RDS([]ontology.ConceptID{1, 2}, core.Options{K: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeMetricsCoversAllFields fails when a field is added to
// core.Metrics without a merge rule in mergeMetrics: it sets every field
// of src to a non-zero value and requires the merge into a zero dst to
// move every field except the caller-owned ones.
func TestMergeMetricsCoversAllFields(t *testing.T) {
	callerOwned := map[string]bool{
		"TotalTime":   true, // wall-clock of the fan-out, not a shard sum
		"ResultCount": true, // merged result count, set after Merger.Sorted
	}

	var src, dst core.Metrics
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(i) + 1)
		case reflect.Float64:
			f.SetFloat(float64(i) + 0.5)
		case reflect.Array:
			// Metrics.Stages: populate every stage's every field, so the
			// merge rule must carry the whole breakdown, not just one cell.
			for j := 0; j < f.Len(); j++ {
				el := f.Index(j)
				for k := 0; k < el.NumField(); k++ {
					el.Field(k).SetInt(int64(i+j+k) + 1)
				}
			}
		default:
			t.Fatalf("core.Metrics field %s has kind %v: teach this test how to populate it",
				sv.Type().Field(i).Name, f.Kind())
		}
	}

	mergeMetrics(&dst, &src)

	dv := reflect.ValueOf(dst)
	for i := 0; i < dv.NumField(); i++ {
		name := dv.Type().Field(i).Name
		if callerOwned[name] {
			continue
		}
		if dv.Field(i).IsZero() {
			t.Errorf("core.Metrics.%s is not aggregated by mergeMetrics; add a merge rule "+
				"(or, if it is caller-owned like TotalTime, exempt it here with a justification)", name)
		}
	}

	// Second merge: additive fields keep summing; TerminalEps stays a max.
	lower := src
	lower.TerminalEps = 0.01
	mergeMetrics(&dst, &lower)
	if dst.DRCCalls != 2*src.DRCCalls {
		t.Errorf("DRCCalls after two merges = %d, want %d", dst.DRCCalls, 2*src.DRCCalls)
	}
	if dst.CacheHits != 2*src.CacheHits || dst.CacheMisses != 2*src.CacheMisses {
		t.Errorf("cache counters after two merges = %d/%d, want %d/%d",
			dst.CacheHits, dst.CacheMisses, 2*src.CacheHits, 2*src.CacheMisses)
	}
	if dst.TerminalEps != src.TerminalEps {
		t.Errorf("TerminalEps after merging a smaller value = %v, want max %v", dst.TerminalEps, src.TerminalEps)
	}
	for i := range dst.Stages {
		if dst.Stages[i].Time != 2*src.Stages[i].Time ||
			dst.Stages[i].AllocBytes != 2*src.Stages[i].AllocBytes ||
			dst.Stages[i].AllocObjects != 2*src.Stages[i].AllocObjects {
			t.Errorf("Stages[%v] after two merges = %+v, want double %+v",
				core.Stage(i), dst.Stages[i], src.Stages[i])
		}
	}
}
