package shard

// Block-partitioned top-k pair join: each shard's documents form one
// PairBlock, and the all-pairs universe decomposes exactly into the
// intra-block tasks (i,i) and the cross-block tasks (i,j), i < j — a
// disjoint partition, so the per-task TotalPairs counters sum to the
// single-engine universe. Every task offers its exact distances into one
// shared core.PairMerger and prunes against its global k-th threshold,
// which is monotonically non-increasing; a bound that prunes against any
// snapshot of it is therefore valid against the final heap, making the
// merged result independent of task interleaving and bitwise identical
// to the single-engine join (and hence to the naive oracle). A task
// whose termination floor clears the global threshold stops early —
// cancellation across blocks, the pair analogue of the cross-shard
// bound.
//
// Blocks are built over the union vocabulary of all shards, so a
// cross-block task can resolve either side's terms from either block's
// vectors. Each shard builds its vectors through its own cache-aware
// seed path (accepting one ontology sweep per shard per concept; block
// builds run concurrently to hide it).

import (
	"context"
	"sort"
	"sync"
	"time"

	"conceptrank/internal/core"
	"conceptrank/internal/corpus"
	"conceptrank/internal/ontology"
	"conceptrank/internal/pool"
)

// TopKPairs returns the k lowest-Ddd document pairs across the whole
// partitioned collection, bitwise identical to core.Engine.TopKPairs
// over the union collection. Options.Workers bounds the concurrent block
// tasks (0 = GOMAXPROCS). Options.Trace is forwarded under a lock with
// TraceEvent.Shard stamped to the task's first block index.
func (e *Engine) TopKPairs(ctx context.Context, opts core.PairOptions) ([]core.PairResult, *core.PairMetrics, error) {
	opts = opts.Normalize()
	m := &core.PairMetrics{}
	start := time.Now()
	ns := len(e.shards)

	// Union vocabulary and per-shard snapshot counts, sampled up front so
	// every block's vectors cover every concept any block can reveal.
	vocabs := make([][]ontology.ConceptID, ns)
	counts := make([]int, ns)
	for i, sh := range e.shards {
		v, n, err := sh.PairVocab()
		if err != nil {
			m.TotalTime = time.Since(start)
			return nil, m, err
		}
		vocabs[i], counts[i] = v, n
	}
	vocab := unionConcepts(vocabs)

	// Build one block per shard, concurrently; per-build metrics are
	// task-local and merged after the barrier.
	blocks := make([]*core.PairBlock, ns)
	bms := make([]core.PairMetrics, ns)
	bg, bctx := pool.GroupWithContext(ctx)
	bg.SetLimit(opts.Workers)
	for i := range e.shards {
		i := i
		bg.Go(func() error {
			if err := bctx.Err(); err != nil {
				return err
			}
			t0 := time.Now()
			blk, err := e.shards[i].BuildPairBlock(counts[i], vocab,
				func(l corpus.DocID) corpus.DocID { return e.mapper.global(i, l) },
				opts.Cache, &bms[i])
			bms[i].SeedTime = time.Since(t0)
			blocks[i] = blk
			return err
		})
	}
	if err := bg.Wait(); err != nil {
		for i := range bms {
			mergePairMetrics(m, &bms[i])
		}
		m.TotalTime = time.Since(start)
		return nil, m, err
	}

	// Fan out the task grid (i,j), i <= j, against the shared merger.
	type task struct{ i, j int }
	var tasks []task
	for i := 0; i < ns; i++ {
		for j := i; j < ns; j++ {
			tasks = append(tasks, task{i, j})
		}
	}
	mg := core.NewPairMerger(opts.K)
	tms := make([]core.PairMetrics, len(tasks))
	var traceMu sync.Mutex
	jg, jctx := pool.GroupWithContext(ctx)
	jg.SetLimit(opts.Workers)
	for ti, tk := range tasks {
		ti, tk := ti, tk
		jg.Go(func() error {
			topts := opts
			if opts.Trace != nil {
				topts.Trace = func(ev core.TraceEvent) {
					ev.Shard = tk.i
					traceMu.Lock()
					opts.Trace(ev)
					traceMu.Unlock()
				}
			}
			t0 := time.Now()
			cancelled, err := core.PairBlockJoin(jctx, blocks[tk.i], blocks[tk.j], topts, mg, &tms[ti])
			tms[ti].JoinTime = time.Since(t0)
			if err != nil {
				return err
			}
			if topts.Trace != nil {
				topts.Trace(core.TraceEvent{Kind: core.TracePairBlock,
					Wave: tk.i, Depth: tk.j, N: int(tms[ti].PairsExamined), Value: b2f(cancelled)})
			}
			return nil
		})
	}
	err := jg.Wait()
	for i := range bms {
		mergePairMetrics(m, &bms[i])
	}
	for i := range tms {
		mergePairMetrics(m, &tms[i])
	}
	if err != nil {
		m.TotalTime = time.Since(start)
		return nil, m, err
	}
	res := mg.Sorted()
	m.ResultCount = len(res)
	m.TotalTime = time.Since(start)
	return res, m, nil
}

// unionConcepts merges per-shard sorted vocabularies into one sorted
// distinct union.
func unionConcepts(vocabs [][]ontology.ConceptID) []ontology.ConceptID {
	seen := make(map[ontology.ConceptID]struct{})
	var out []ontology.ConceptID
	for _, v := range vocabs {
		for _, c := range v {
			if _, ok := seen[c]; !ok {
				seen[c] = struct{}{}
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergePairMetrics accumulates src into dst with the Metrics
// conventions: counters and component times sum (task pair universes are
// disjoint, so TotalPairs sums to the single-engine universe), Levels
// merges by max (the deepest task), TotalTime and ResultCount are owned
// by the top-level caller. TestMergePairMetricsCoversAllFields fails
// when a core.PairMetrics field is added without a rule here.
func mergePairMetrics(dst, src *core.PairMetrics) {
	dst.SeedTime += src.SeedTime
	dst.JoinTime += src.JoinTime
	dst.TotalPairs += src.TotalPairs
	dst.PairsDiscovered += src.PairsDiscovered
	dst.PairsExamined += src.PairsExamined
	dst.PairsPruned += src.PairsPruned
	if src.Levels > dst.Levels {
		dst.Levels = src.Levels
	}
	dst.Blocks += src.Blocks
	dst.CancelledBlocks += src.CancelledBlocks
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
