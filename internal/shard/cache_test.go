package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"conceptrank/internal/cache"
	"conceptrank/internal/core"
	"conceptrank/internal/ontology"
)

// TestShardedCachedMatchesCold extends the sharded equivalence guarantee
// to Options.Cache: a sharded query with a shared cache — cold on the
// first pass, warm on the second — must stay bitwise identical to both
// the uncached sharded query and the single-engine answer, and the merged
// metrics must aggregate the per-shard cache counters additively.
func TestShardedCachedMatchesCold(t *testing.T) {
	r := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 8; trial++ {
		o := randomDAGOntology(r, 20+r.Intn(100), 0.3)
		coll := randomCollection(r, o, 5+r.Intn(60), 8)
		single := singleEngine(o, coll)
		for _, n := range []int{1, 3, 5} {
			se, err := New(o, coll, Config{Shards: n, Placement: RoundRobin})
			if err != nil {
				t.Fatal(err)
			}
			cc := cache.New(cache.Config{})
			q := make([]ontology.ConceptID, 1+r.Intn(3))
			for j := range q {
				q[j] = ontology.ConceptID(r.Intn(o.NumConcepts()))
			}
			opts := core.Options{K: 1 + r.Intn(8), ErrorThreshold: []float64{0, 0.5, 1}[trial%3]}
			label := fmt.Sprintf("trial %d shards %d", trial, n)

			want, _, err := single.RDS(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			coldSharded, _, err := se.RDS(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, label+" uncached sharded", want, coldSharded)

			cachedOpts := opts
			cachedOpts.Cache = cc
			first, m1, err := se.RDS(q, cachedOpts)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, label+" first cached pass", want, first)
			warm, m2, err := se.RDS(q, cachedOpts)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, label+" warm pass", want, warm)

			// Every shard resolves its own seed vectors: the first pass is
			// all misses, the warm pass all hits, and the merged counters
			// are the per-shard sums.
			if m1.Merged.CacheMisses == 0 {
				t.Fatalf("%s: first cached pass recorded no misses", label)
			}
			if m2.Merged.CacheMisses != 0 || m2.Merged.CacheHits != m1.Merged.CacheMisses {
				t.Fatalf("%s: warm pass hits=%d misses=%d, want hits=%d misses=0",
					label, m2.Merged.CacheHits, m2.Merged.CacheMisses, m1.Merged.CacheMisses)
			}
			sumHits, sumMisses := 0, 0
			for _, pm := range m2.PerShard {
				sumHits += pm.CacheHits
				sumMisses += pm.CacheMisses
			}
			if sumHits != m2.Merged.CacheHits || sumMisses != m2.Merged.CacheMisses {
				t.Fatalf("%s: merged cache counters %d/%d, per-shard sums %d/%d",
					label, m2.Merged.CacheHits, m2.Merged.CacheMisses, sumHits, sumMisses)
			}
		}
	}
}
