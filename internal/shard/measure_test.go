package shard

// The sharded engine forwards core.Options verbatim to its per-shard
// engines and merges by the canonical (distance, doc) order, so the
// pluggable-measure path needs no shard-specific code — this grid pins
// that it actually holds: sharded rankings under every built-in measure
// are bitwise identical to a single engine over the union collection, and
// the explicit Rada measure reproduces the nil-measure default.

import (
	"math/rand"
	"testing"

	"conceptrank/internal/core"
	"conceptrank/internal/measure"
	"conceptrank/internal/ontology"
)

func TestShardedMeasureEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(1506))
	for corp := 0; corp < 3; corp++ {
		o := randomDAGOntology(r, 40+r.Intn(80), 0.3)
		coll := randomCollection(r, o, 10+r.Intn(50), 7)
		single := singleEngine(o, coll)
		q := []ontology.ConceptID{
			ontology.ConceptID(r.Intn(o.NumConcepts())),
			ontology.ConceptID(r.Intn(o.NumConcepts())),
		}
		for _, m := range []measure.Measure{measure.Rada(), measure.NewDensity(o), measure.NewEnhanced(o)} {
			for _, sds := range []bool{false, true} {
				opts := core.Options{K: 6, ErrorThreshold: 0.5, Measure: m}
				var want []core.Result
				var err error
				if sds {
					want, _, err = single.SDS(q, opts)
				} else {
					want, _, err = single.RDS(q, opts)
				}
				if err != nil {
					t.Fatal(err)
				}
				for _, n := range []int{1, 3, 5} {
					se, err := New(o, coll, Config{Shards: n})
					if err != nil {
						t.Fatal(err)
					}
					var got []core.Result
					if sds {
						got, _, err = se.SDS(q, opts)
					} else {
						got, _, err = se.RDS(q, opts)
					}
					if err != nil {
						t.Fatal(err)
					}
					assertIdentical(t, m.Name(), want, got)
				}
			}
		}

		// The explicit Rada measure through a sharded engine equals the
		// nil-measure sharded default bit for bit.
		se, err := New(o, coll, Config{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		def, _, err := se.RDS(q, core.Options{K: 6, ErrorThreshold: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		viaM, _, err := se.RDS(q, core.Options{K: 6, ErrorThreshold: 0.5, Measure: measure.Rada()})
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "sharded rada vs nil", def, viaM)
	}
}
