package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"conceptrank/internal/core"
	"conceptrank/internal/corpus"
	"conceptrank/internal/ontology"
)

// Sharded cursor-resume equivalence: taking the merged top-k and then
// growing to k' = 2k must be bitwise identical to a fresh sharded query at
// k' AND to a single engine over the union collection at k' — across shard
// counts, placements, Workers settings and both query types. Growing
// resumes bound-paused shards, so the grid also exercises the
// pause/unpause path. CI runs this under -race.

func TestShardedCursorResumeGrid(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	ctx := context.Background()
	cases := 0
	for corp := 0; corp < 4; corp++ {
		o := randomDAGOntology(r, 20+r.Intn(100), 0.3)
		coll := randomCollection(r, o, 1+r.Intn(60), 8)
		single := singleEngine(o, coll)
		for qi := 0; qi < 2; qi++ {
			nq := 1 + r.Intn(4)
			q := make([]ontology.ConceptID, nq)
			for j := range q {
				q[j] = ontology.ConceptID(r.Intn(o.NumConcepts()))
			}
			k := 1 + r.Intn(6)
			opts := core.Options{
				K:              k,
				ErrorThreshold: []float64{0, 0.5, 1}[r.Intn(3)],
			}
			sds := (corp+qi)%2 == 1
			runSingle := func(o core.Options) ([]core.Result, *core.Metrics, error) {
				if sds {
					return single.SDS(q, o)
				}
				return single.RDS(q, o)
			}
			wantK, _, err := runSingle(opts)
			if err != nil {
				t.Fatal(err)
			}
			big := opts
			big.K = 2 * k
			want2K, _, err := runSingle(big)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 3, 5} {
				for _, p := range allPlacements {
					se, err := New(o, coll, Config{Shards: n, Placement: p})
					if err != nil {
						t.Fatal(err)
					}
					for _, w := range []int{1, 4} {
						so := opts
						so.Workers = w
						label := fmt.Sprintf("%s+cursor", formatCase(corp, qi, n, p, w, sds))

						var cur *Cursor
						if sds {
							cur, err = se.OpenSDS(q, so)
						} else {
							cur, err = se.OpenRDS(q, so)
						}
						if err != nil {
							t.Fatalf("%s: open: %v", label, err)
						}
						page, err := cur.Next(ctx, k)
						if err != nil {
							t.Fatalf("%s: Next: %v", label, err)
						}
						assertIdentical(t, label+" first page", wantK, page)

						grown, err := cur.GrowK(ctx, 2*k)
						if err != nil {
							t.Fatalf("%s: GrowK: %v", label, err)
						}
						assertIdentical(t, label+" grown", want2K, grown)
						if sm := cur.Metrics(); sm.Merged.ResultCount != len(grown) {
							t.Fatalf("%s: merged ResultCount %d != %d", label, sm.Merged.ResultCount, len(grown))
						}
						cur.Close()
						cases++
					}
					if err := se.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	if cases < 90 {
		t.Fatalf("grid covered only %d cases", cases)
	}
}

// TestShardedCursorResumesPausedShards forces the cross-shard bound to
// pause a shard at small k, then grows k far enough that the paused
// shard's documents are needed again — the cursor must resume it and still
// match the single-engine answer.
func TestShardedCursorResumesPausedShards(t *testing.T) {
	// Same fixture as TestCrossShardCancellation: shard 0 holds one exact
	// match, shard 1 holds only distant documents, so at K=1 the bound
	// pauses shard 1 almost immediately.
	b := ontology.NewBuilder("root")
	target := b.AddConcept("target")
	b.MustAddEdge(b.Root(), target)
	deepParent := b.Root()
	for i := 0; i < 6; i++ {
		c := b.AddConcept("deep")
		b.MustAddEdge(deepParent, c)
		deepParent = c
	}
	o := b.MustFinalize()

	coll := corpus.New()
	coll.Add("hit", 0, []ontology.ConceptID{target})      // doc 0 -> shard 0: exact match
	coll.Add("deep", 0, []ontology.ConceptID{deepParent}) // doc 1 -> shard 1: far away
	coll.Add("hit", 0, []ontology.ConceptID{target})      // doc 2 -> shard 0
	coll.Add("deep", 0, []ontology.ConceptID{deepParent}) // doc 3 -> shard 1
	se, err := New(o, coll, Config{Shards: 2, Placement: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	single := singleEngine(o, coll)
	q := []ontology.ConceptID{target}
	opts := core.Options{K: 1, ErrorThreshold: 1}

	cur, err := se.OpenRDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	first, err := cur.Next(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want1, _, err := single.RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "k=1 page", want1, first)

	// Grow to the whole collection: the paused shard's documents now rank.
	grown, err := cur.GrowK(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	want4, _, err := single.RDS(q, core.Options{K: 4, ErrorThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "grown to 4", want4, grown)
	if len(grown) != 4 {
		t.Fatalf("grown ranking has %d results, want all 4 documents", len(grown))
	}
}

// TestShardedCursorClosedAndValidation pins the error contract of the
// sharded cursor API.
func TestShardedCursorClosedAndValidation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	o := randomDAGOntology(r, 40, 0.3)
	coll := randomCollection(r, o, 10, 5)
	se, err := New(o, coll, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	if _, err := se.OpenRDS(nil, core.Options{K: 2}); !errors.Is(err, core.ErrEmptyQuery) {
		t.Fatalf("empty query: %v, want ErrEmptyQuery", err)
	}
	if _, err := se.OpenRDS([]ontology.ConceptID{0}, core.Options{K: 2, Workers: -1}); !errors.Is(err, core.ErrNegativeWorkers) {
		t.Fatalf("negative workers: %v, want ErrNegativeWorkers", err)
	}
	if _, err := se.OpenRDS([]ontology.ConceptID{ontology.ConceptID(o.NumConcepts())}, core.Options{K: 2}); err == nil {
		t.Fatal("out-of-range concept: want an error")
	}

	cur, err := se.OpenRDS([]ontology.ConceptID{0}, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	cur.Close()
	cur.Close()
	if _, err := cur.Next(context.Background(), 1); !errors.Is(err, core.ErrCursorClosed) {
		t.Fatalf("Next after close: %v, want ErrCursorClosed", err)
	}
	if _, err := cur.GrowK(context.Background(), 5); !errors.Is(err, core.ErrCursorClosed) {
		t.Fatalf("GrowK after close: %v, want ErrCursorClosed", err)
	}
}

// TestShardedCursorContextResumable: a sharded Next cancelled mid-flight
// leaves every shard cursor resumable; the retry completes with the
// single-engine answer.
func TestShardedCursorContextResumable(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	o := randomDAGOntology(r, 120, 0.35)
	coll := randomCollection(r, o, 60, 8)
	se, err := New(o, coll, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	single := singleEngine(o, coll)
	q := []ontology.ConceptID{
		ontology.ConceptID(r.Intn(o.NumConcepts())),
		ontology.ConceptID(r.Intn(o.NumConcepts())),
	}
	opts := core.Options{K: 5, ErrorThreshold: 0}

	cur, err := se.OpenRDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cur.Next(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next under cancelled ctx: %v, want context.Canceled", err)
	}
	page, err := cur.Next(context.Background(), 5)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	want, _, err := single.RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "resumed page", want[:len(page)], page)
}
