package shard

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"conceptrank/internal/cache"
	"conceptrank/internal/core"
	"conceptrank/internal/corpus"
	"conceptrank/internal/ontology"
)

// pairCollection mirrors the core package's helper: a random corpus with
// a share of empty documents, which every tier must exclude.
func pairCollection(r *rand.Rand, o *ontology.Ontology, docs, maxConcepts int, emptyProb float64) *corpus.Collection {
	c := corpus.New()
	for i := 0; i < docs; i++ {
		if r.Float64() < emptyProb {
			c.Add("empty", 0, nil)
			continue
		}
		n := 1 + r.Intn(maxConcepts)
		concepts := make([]ontology.ConceptID, n)
		for j := range concepts {
			concepts[j] = ontology.ConceptID(r.Intn(o.NumConcepts()))
		}
		c.Add("doc", 0, concepts)
	}
	return c
}

func assertPairsIdentical(t *testing.T, label string, want, got []core.PairResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: rank %d: got {%d,%d %v}, want {%d,%d %v}",
				label, i, got[i].A, got[i].B, got[i].Distance, want[i].A, want[i].B, want[i].Distance)
		}
	}
}

// TestShardedTopKPairsEquivalenceGrid pins the block-partitioned join to
// the single-engine join bitwise across corpora, shard counts, placement
// policies, worker widths, k, and cache state — 100+ comparisons, run
// under -race in CI. (The core grid pins single-engine to the naive
// oracle, so transitively all three tiers agree.)
func TestShardedTopKPairsEquivalenceGrid(t *testing.T) {
	r := rand.New(rand.NewSource(1001))
	ctx := context.Background()
	cases := 0
	for ci := 0; ci < 5; ci++ {
		o := randomDAGOntology(r, 20+r.Intn(100), []float64{0, 0.2, 0.4}[ci%3])
		docs := []int{0, 3, 17, 30 + r.Intn(30), 25}[ci]
		coll := pairCollection(r, o, docs, 1+r.Intn(6), 0.1)
		single := singleEngine(o, coll)

		want := map[int][]core.PairResult{}
		for _, k := range []int{2, 10} {
			res, _, err := single.TopKPairs(ctx, core.PairOptions{K: k})
			if err != nil {
				t.Fatalf("corpus %d k=%d: single: %v", ci, k, err)
			}
			want[k] = res
		}

		for si, shards := range []int{1, 2, 3, 5, 8} {
			placement := RoundRobin
			if si%2 == 1 {
				placement = SizeBalanced
			}
			se, err := New(o, coll, Config{Shards: shards, Placement: placement})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				for _, k := range []int{2, 10} {
					got, gm, err := se.TopKPairs(ctx, core.PairOptions{K: k, Workers: workers})
					if err != nil {
						t.Fatalf("corpus %d shards=%d workers=%d k=%d: %v", ci, shards, workers, k, err)
					}
					assertPairsIdentical(t, "sharded vs single", want[k], got)
					if wantBlocks := shards * (shards + 1) / 2; gm.Blocks != wantBlocks {
						t.Fatalf("corpus %d shards=%d: ran %d block tasks, want %d", ci, shards, gm.Blocks, wantBlocks)
					}
					cases++
				}
			}
		}
	}
	if cases < 100 {
		t.Fatalf("grid ran %d equivalence cases, want >= 100", cases)
	}
	t.Logf("grid ran %d equivalence cases", cases)
}

// TestShardedTopKPairsSharedCache: shards sharing one cache (each under
// its own corpus ID) must stay bitwise identical to the single engine,
// cold and warm, and the task pair universes must partition the global
// one.
func TestShardedTopKPairsSharedCache(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	o := randomDAGOntology(r, 90, 0.25)
	coll := pairCollection(r, o, 55, 5, 0.1)
	ctx := context.Background()

	single := singleEngine(o, coll)
	want, wm, err := single.TopKPairs(ctx, core.PairOptions{K: 12})
	if err != nil {
		t.Fatal(err)
	}

	se, err := New(o, coll, Config{Shards: 4, Placement: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	cc := cache.New(cache.Config{})
	fill, fm, err := se.TopKPairs(ctx, core.PairOptions{K: 12, Cache: cc})
	if err != nil {
		t.Fatal(err)
	}
	warm, hm, err := se.TopKPairs(ctx, core.PairOptions{K: 12, Cache: cc})
	if err != nil {
		t.Fatal(err)
	}
	assertPairsIdentical(t, "sharded cache-fill", want, fill)
	assertPairsIdentical(t, "sharded warm", want, warm)
	if fm.TotalPairs != wm.TotalPairs {
		t.Fatalf("task universes sum to %d pairs, single engine has %d", fm.TotalPairs, wm.TotalPairs)
	}
	if fm.CacheMisses == 0 || hm.CacheHits == 0 {
		t.Fatalf("cache counters: fill misses %d, warm hits %d — expected both non-zero",
			fm.CacheMisses, hm.CacheHits)
	}
	if hm.CacheMisses != 0 {
		t.Fatalf("warm run recorded %d misses, want 0", hm.CacheMisses)
	}
}

// TestShardedPairTraceForwarding: pair span events forwarded from
// concurrent block tasks carry a valid task shard index, and every task
// reports one PairBlock event.
func TestShardedPairTraceForwarding(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	o := randomDAGOntology(r, 70, 0.2)
	coll := pairCollection(r, o, 40, 5, 0)
	se, err := New(o, coll, Config{Shards: 3, Placement: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	var events []core.TraceEvent
	_, m, err := se.TopKPairs(context.Background(), core.PairOptions{
		K: 5, Workers: 4,
		// Appends need no lock: forwarding is serialized by the engine.
		Trace: func(ev core.TraceEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	for i, ev := range events {
		switch ev.Kind {
		case core.TracePairLevel, core.TracePairExam:
			if ev.Shard < 0 || ev.Shard >= se.NumShards() {
				t.Fatalf("event %d (%v): shard %d out of range", i, ev.Kind, ev.Shard)
			}
		case core.TracePairBlock:
			blocks++
			if ev.Wave > ev.Depth {
				t.Fatalf("event %d: block coordinates (%d,%d) not upper-triangular", i, ev.Wave, ev.Depth)
			}
		default:
			t.Fatalf("event %d: unexpected kind %v in a pair join", i, ev.Kind)
		}
	}
	if blocks != m.Blocks {
		t.Fatalf("got %d PairBlock events, want one per task (%d)", blocks, m.Blocks)
	}
}

// TestMergePairMetricsCoversAllFields fails when a field is added to
// core.PairMetrics without a merge rule in mergePairMetrics — the pair
// analogue of TestMergeMetricsCoversAllFields, so the sharded merge can
// never silently drop a counter.
func TestMergePairMetricsCoversAllFields(t *testing.T) {
	callerOwned := map[string]bool{
		"TotalTime":   true, // wall-clock of the fan-out, not a task sum
		"ResultCount": true, // merged result count, set after Sorted
	}

	var src, dst core.PairMetrics
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(i) + 1)
		case reflect.Float64:
			f.SetFloat(float64(i) + 0.5)
		default:
			t.Fatalf("core.PairMetrics field %s has kind %v: teach this test how to populate it",
				sv.Type().Field(i).Name, f.Kind())
		}
	}

	mergePairMetrics(&dst, &src)

	dv := reflect.ValueOf(dst)
	for i := 0; i < dv.NumField(); i++ {
		name := dv.Type().Field(i).Name
		if callerOwned[name] {
			continue
		}
		if dv.Field(i).IsZero() {
			t.Errorf("core.PairMetrics.%s is not aggregated by mergePairMetrics; add a merge rule "+
				"(or, if it is caller-owned like TotalTime, exempt it here with a justification)", name)
		}
	}

	// Second merge: additive fields keep summing; Levels stays a max.
	shallower := src
	shallower.Levels = 1
	mergePairMetrics(&dst, &shallower)
	if dst.PairsExamined != 2*src.PairsExamined || dst.TotalPairs != 2*src.TotalPairs {
		t.Errorf("pair counters after two merges = %d/%d, want %d/%d",
			dst.PairsExamined, dst.TotalPairs, 2*src.PairsExamined, 2*src.TotalPairs)
	}
	if dst.SeedTime != 2*src.SeedTime {
		t.Errorf("SeedTime after two merges = %v, want %v", dst.SeedTime, time.Duration(2*src.SeedTime))
	}
	if dst.Levels != src.Levels {
		t.Errorf("Levels after merging a shallower value = %d, want max %d", dst.Levels, src.Levels)
	}
}
