package shard

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"conceptrank/internal/core"
	"conceptrank/internal/corpus"
	"conceptrank/internal/index"
	"conceptrank/internal/ontology"
)

// --- shared generators (mirroring internal/core's randomized suite) ---

func randomDAGOntology(r *rand.Rand, n int, extraEdgeProb float64) *ontology.Ontology {
	b := ontology.NewBuilder("root")
	ids := []ontology.ConceptID{0}
	for i := 1; i < n; i++ {
		c := b.AddConcept("c")
		parent := ids[r.Intn(len(ids))]
		b.MustAddEdge(parent, c)
		if r.Float64() < extraEdgeProb && len(ids) > 2 {
			p2 := ids[r.Intn(len(ids)-1)]
			if p2 != parent {
				_ = b.AddEdge(p2, c)
			}
		}
		ids = append(ids, c)
	}
	return b.MustFinalize()
}

func randomCollection(r *rand.Rand, o *ontology.Ontology, docs, maxConcepts int) *corpus.Collection {
	c := corpus.New()
	for i := 0; i < docs; i++ {
		n := 1 + r.Intn(maxConcepts)
		concepts := make([]ontology.ConceptID, n)
		for j := range concepts {
			concepts[j] = ontology.ConceptID(r.Intn(o.NumConcepts()))
		}
		c.Add("doc", 0, concepts)
	}
	return c
}

func singleEngine(o *ontology.Ontology, c *corpus.Collection) *core.Engine {
	return core.NewEngine(o, index.BuildMemInverted(c), index.BuildMemForward(c), c.NumDocs(), nil)
}

// assertIdentical requires got to be bitwise identical to want: same
// documents, same float64 distances, same order (i.e. same tie-breaks).
func assertIdentical(t *testing.T, label string, want, got []core.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d results, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d differs\n got: %v\nwant: %v", label, i, got, want)
		}
	}
}

var (
	allPlacements  = []Placement{RoundRobin, SizeBalanced}
	shardCountGrid = []int{1, 2, 3, 5, 8}
)

// TestShardedEquivalenceGrid is the central guarantee of this package:
// for randomized corpora, queries and option settings, the sharded engine
// returns bitwise-identical results to a single engine over the union
// collection — for every shard count, placement policy, Workers setting
// and both query types.
func TestShardedEquivalenceGrid(t *testing.T) {
	r := rand.New(rand.NewSource(20140328))
	for corp := 0; corp < 6; corp++ {
		o := randomDAGOntology(r, 20+r.Intn(100), 0.3)
		coll := randomCollection(r, o, 1+r.Intn(60), 8)
		single := singleEngine(o, coll)
		for qi := 0; qi < 2; qi++ {
			nq := 1 + r.Intn(4)
			q := make([]ontology.ConceptID, nq)
			for j := range q {
				q[j] = ontology.ConceptID(r.Intn(o.NumConcepts()))
			}
			opts := core.Options{
				K:              1 + r.Intn(8),
				ErrorThreshold: []float64{0, 0.5, 1}[r.Intn(3)],
			}
			sds := (corp+qi)%2 == 1
			var want []core.Result
			var err error
			if sds {
				want, _, err = single.SDS(q, opts)
			} else {
				want, _, err = single.RDS(q, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range shardCountGrid {
				for _, p := range allPlacements {
					se, err := New(o, coll, Config{Shards: n, Placement: p})
					if err != nil {
						t.Fatal(err)
					}
					for _, w := range []int{1, 4} {
						so := opts
						so.Workers = w
						// The grid runs traced: tracing must never perturb
						// the sharded/single equivalence, and the -race CI
						// matrix holds the forwarding lock to account.
						traced := 0
						so.Trace = func(core.TraceEvent) { traced++ }
						var got []core.Result
						var sm *Metrics
						if sds {
							got, sm, err = se.SDS(q, so)
						} else {
							got, sm, err = se.RDS(q, so)
						}
						if err != nil {
							t.Fatal(err)
						}
						label := formatCase(corp, qi, n, p, w, sds)
						assertIdentical(t, label, want, got)
						if sm.Merged.ResultCount != len(got) {
							t.Fatalf("%s: merged ResultCount %d != %d", label, sm.Merged.ResultCount, len(got))
						}
						if traced == 0 {
							t.Fatalf("%s: no trace events delivered", label)
						}
					}
					if err := se.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

func formatCase(corp, qi, shards int, p Placement, workers int, sds bool) string {
	typ := "rds"
	if sds {
		typ = "sds"
	}
	return typ + " corpus=" + itoa(corp) + " q=" + itoa(qi) +
		" shards=" + itoa(shards) + " placement=" + p.String() + " workers=" + itoa(workers)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestShardedTieBreaking floods the engines with equidistant documents: a
// flat ontology where dozens of documents tie exactly, so any divergence
// in the canonical (distance, doc ID) order between merge and single
// engine would surface immediately.
func TestShardedTieBreaking(t *testing.T) {
	b := ontology.NewBuilder("root")
	var leaves []ontology.ConceptID
	for i := 0; i < 12; i++ {
		c := b.AddConcept("leaf")
		b.MustAddEdge(0, c)
		leaves = append(leaves, c)
	}
	o := b.MustFinalize()
	coll := corpus.New()
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 48; i++ {
		coll.Add("doc", 0, []ontology.ConceptID{leaves[r.Intn(len(leaves))]})
	}
	single := singleEngine(o, coll)
	q := []ontology.ConceptID{leaves[0], leaves[3]}
	for _, k := range []int{1, 3, 7, 20} {
		opts := core.Options{K: k, ErrorThreshold: 1}
		want, _, err := single.RDS(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(want); i++ {
			if want[i-1].Distance == want[i].Distance && want[i-1].Doc >= want[i].Doc {
				t.Fatalf("single engine ties not in canonical order: %v", want)
			}
		}
		for _, n := range shardCountGrid {
			for _, p := range allPlacements {
				se, err := New(o, coll, Config{Shards: n, Placement: p})
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := se.RDS(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				assertIdentical(t, "k="+itoa(k)+" shards="+itoa(n)+" "+p.String(), want, got)
			}
		}
	}
}

// TestPartition checks placement mechanics: round-robin assignment,
// size-balanced loads, and — load-bearing for the tie-break equivalence —
// strictly increasing local→global maps under both policies.
func TestPartition(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	o := randomDAGOntology(r, 30, 0.2)
	coll := randomCollection(r, o, 41, 9)
	for _, p := range allPlacements {
		colls, maps, err := Partition(coll, Config{Shards: 4, Placement: p})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		seen := make(map[corpus.DocID]bool)
		for s := range colls {
			if colls[s].NumDocs() != len(maps[s]) {
				t.Fatalf("%v shard %d: %d docs vs %d map entries", p, s, colls[s].NumDocs(), len(maps[s]))
			}
			for i, g := range maps[s] {
				if i > 0 && maps[s][i-1] >= g {
					t.Fatalf("%v shard %d: map not strictly increasing: %v", p, s, maps[s])
				}
				if seen[g] {
					t.Fatalf("%v: doc %d in two shards", p, g)
				}
				seen[g] = true
				// The shard-local copy must be the same document.
				local := colls[s].Doc(corpus.DocID(i))
				global := coll.Doc(g)
				if len(local.Concepts) != len(global.Concepts) {
					t.Fatalf("%v shard %d doc %d: concepts differ", p, s, i)
				}
			}
			total += colls[s].NumDocs()
		}
		if total != coll.NumDocs() {
			t.Fatalf("%v: %d docs placed, want %d", p, total, coll.NumDocs())
		}
	}
	// Round-robin is positional by construction.
	colls, maps, err := Partition(coll, Config{Shards: 3, Placement: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	for s := range colls {
		for i, g := range maps[s] {
			if int(g)%3 != s || int(g)/3 != i {
				t.Fatalf("round-robin misplacement: shard %d slot %d holds doc %d", s, i, g)
			}
		}
	}

	if _, _, err := Partition(coll, Config{Shards: 0}); err == nil {
		t.Fatal("Shards=0 must be rejected")
	}
	if _, _, err := Partition(coll, Config{Shards: 2, Placement: Placement(9)}); err == nil {
		t.Fatal("unknown placement must be rejected")
	}
}

func TestParsePlacement(t *testing.T) {
	for _, p := range allPlacements {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePlacement(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePlacement("mystery"); err == nil {
		t.Fatal("ParsePlacement must reject unknown names")
	}
}

func TestShardedQueryValidation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	o := randomDAGOntology(r, 20, 0.2)
	coll := randomCollection(r, o, 10, 4)
	se, err := New(o, coll, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := se.RDS(nil, core.Options{}); !errors.Is(err, core.ErrEmptyQuery) {
		t.Fatalf("empty query: %v", err)
	}
	if _, _, err := se.RDS([]ontology.ConceptID{9999}, core.Options{}); err == nil {
		t.Fatal("out-of-range concept must be rejected")
	}
	if _, _, err := se.RDS([]ontology.ConceptID{1}, core.Options{Workers: -1}); !errors.Is(err, core.ErrNegativeWorkers) {
		t.Fatalf("negative workers: %v", err)
	}
}

// TestShardedContextCancellation: a context cancelled before the query
// starts aborts every shard at its first wave boundary.
func TestShardedContextCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	o := randomDAGOntology(r, 60, 0.3)
	coll := randomCollection(r, o, 40, 6)
	se, err := New(o, coll, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := se.RDSContext(ctx, []ontology.ConceptID{1, 2}, core.Options{K: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatalf("cancelled query returned results: %v", res)
	}
}

// TestCrossShardCancellation constructs a two-shard workload where one
// shard holds the entire top-k at distance zero and the other must crawl a
// very deep chain: the fast shard fills the merged heap, the slow shard's
// rising termination floor crosses the merged k-th distance, and the bound
// cancels it. The answer must be identical to the single engine either way.
func TestCrossShardCancellation(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("needs parallel shard execution to observe cross-shard cancellation")
	}
	const depth = 1500
	b := ontology.NewBuilder("root")
	qc := b.AddConcept("q")
	b.MustAddEdge(0, qc)
	prev := ontology.ConceptID(0)
	var deepest ontology.ConceptID
	for i := 0; i < depth; i++ {
		c := b.AddConcept("x")
		b.MustAddEdge(prev, c)
		prev, deepest = c, c
	}
	o := b.MustFinalize()

	coll := corpus.New()
	// Round-robin over 2 shards: even doc IDs (shard 0) match the query
	// exactly; odd doc IDs (shard 1) sit at the end of the chain.
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			coll.Add("hit", 0, []ontology.ConceptID{qc})
		} else {
			coll.Add("deep", 0, []ontology.ConceptID{deepest})
		}
	}
	q := []ontology.ConceptID{qc}
	opts := core.Options{K: 3, ErrorThreshold: 0}

	want, _, err := singleEngine(o, coll).RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	se, err := New(o, coll, Config{Shards: 2, Placement: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	got, sm, err := se.RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "cross-shard cancellation", want, got)
	if sm.CancelledShards != 1 {
		t.Errorf("CancelledShards = %d, want 1 (shard 1 should be stopped by the bound)", sm.CancelledShards)
	}
	if sm.PerShard[0].ResultCount != 3 {
		t.Errorf("shard 0 metrics: %+v", sm.PerShard[0])
	}
}

// TestShardedMetricsAggregation: merged counters are the per-shard sums.
func TestShardedMetricsAggregation(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	o := randomDAGOntology(r, 50, 0.3)
	coll := randomCollection(r, o, 30, 6)
	se, err := New(o, coll, Config{Shards: 3, Placement: SizeBalanced})
	if err != nil {
		t.Fatal(err)
	}
	_, sm, err := se.RDS([]ontology.ConceptID{1, 2, 3}, core.Options{K: 5, ErrorThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wantExamined, wantDiscovered int
	var wantVisited int64
	for _, m := range sm.PerShard {
		wantExamined += m.DocsExamined
		wantDiscovered += m.DocsDiscovered
		wantVisited += m.NodesVisited
	}
	if sm.Merged.DocsExamined != wantExamined || sm.Merged.DocsDiscovered != wantDiscovered ||
		sm.Merged.NodesVisited != wantVisited {
		t.Fatalf("merged %+v does not sum per-shard metrics", sm.Merged)
	}
	if sm.Merged.TotalTime <= 0 {
		t.Fatal("merged TotalTime not set")
	}
}

// TestMoreShardsThanDocs: empty shards are skipped, results unchanged.
func TestMoreShardsThanDocs(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	o := randomDAGOntology(r, 25, 0.2)
	coll := randomCollection(r, o, 3, 4)
	want, _, err := singleEngine(o, coll).RDS([]ontology.ConceptID{1}, core.Options{K: 5, ErrorThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range allPlacements {
		se, err := New(o, coll, Config{Shards: 8, Placement: p})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := se.RDS([]ontology.ConceptID{1}, core.Options{K: 5, ErrorThreshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, p.String(), want, got)
	}
}
