package shard

import (
	"sync"

	"conceptrank/internal/core"
	"conceptrank/internal/corpus"
	"conceptrank/internal/index"
	"conceptrank/internal/ontology"
)

// DynamicEngine is a growable sharded engine: AddDocument routes each new
// document to the least-loaded shard and the document is searchable by the
// next query — kNDS needs no distance precomputation, so sharding keeps
// the paper's on-the-fly document integration property.
//
// Routing follows the SizeBalanced placement policy (smallest total
// concept count, ties to the lowest shard index), and global DocIDs are
// assigned in insertion order, so a DynamicEngine loaded document by
// document answers queries identically to New(o, coll,
// Config{Placement: SizeBalanced}) over the same sequence — and, by the
// same merge argument, to a single engine over the union.
type DynamicEngine struct {
	Engine

	mu    sync.RWMutex
	dyns  []*index.Dynamic
	maps  [][]corpus.DocID // shard-local → global, append-only
	sizes []int            // total (deduplicated) concepts per shard
	total int              // global documents assigned
}

// NumShards is promoted from Engine; AddDocument is the growth entry point.

// NewDynamic builds an empty growable sharded engine with the given number
// of shards.
func NewDynamic(o *ontology.Ontology, shards int) (*DynamicEngine, error) {
	if err := (Config{Shards: shards, Placement: SizeBalanced}).validate(); err != nil {
		return nil, err
	}
	d := &DynamicEngine{
		Engine: Engine{o: o},
		maps:   make([][]corpus.DocID, shards),
		sizes:  make([]int, shards),
	}
	for i := 0; i < shards; i++ {
		dyn := index.NewDynamic()
		d.dyns = append(d.dyns, dyn)
		d.Engine.shards = append(d.Engine.shards,
			core.NewEngineDynamic(o, dyn, dyn, dyn.NumDocs, nil))
		d.Engine.counts = append(d.Engine.counts, dyn.NumDocs)
	}
	d.Engine.mapper = d
	return d, nil
}

// global implements docMapper under the read lock: queries translate
// shard-local results while documents may be added concurrently.
func (d *DynamicEngine) global(s int, l corpus.DocID) corpus.DocID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.maps[s][l]
}

// AddDocument routes the document to the shard with the smallest total
// concept count (ties: lowest shard index) and returns its global DocID,
// assigned in insertion order. Safe for concurrent use with queries and
// other AddDocument calls.
func (d *DynamicEngine) AddDocument(name string, concepts []ontology.ConceptID) corpus.DocID {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := 0
	for i := 1; i < len(d.dyns); i++ {
		if d.sizes[i] < d.sizes[s] {
			s = i
		}
	}
	id := corpus.DocID(d.total)
	d.total++
	d.maps[s] = append(d.maps[s], id)
	d.sizes[s] += uniqueConcepts(concepts)
	// The shard index append stays inside the lock so the local ID assigned
	// by the Dynamic index always equals the map slot appended above.
	d.dyns[s].AddDocument(name, concepts)
	return id
}

// uniqueConcepts counts distinct concepts — the same size measure
// Partition uses (collections deduplicate on Add), so routing matches the
// SizeBalanced policy exactly.
func uniqueConcepts(concepts []ontology.ConceptID) int {
	if len(concepts) < 2 {
		return len(concepts)
	}
	seen := make(map[ontology.ConceptID]struct{}, len(concepts))
	for _, c := range concepts {
		seen[c] = struct{}{}
	}
	return len(seen)
}
