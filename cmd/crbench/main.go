// Command crbench regenerates the tables and figures of the paper's
// experimental evaluation (Section 6) on synthetic data, printing each as a
// markdown table. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	crbench -scale small -exp all
//	crbench -scale medium -exp fig7 -out results.md
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"conceptrank/internal/bench"
	"conceptrank/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crbench: ")
	var (
		scaleName = flag.String("scale", "small", "environment scale: small, medium or paper")
		exp       = flag.String("exp", "all", "experiment: "+strings.Join(bench.Names(), ", "))
		seed      = flag.Int64("seed", 1, "generator seed")
		workers   = flag.Int("workers", 1, "intra-query Options.Workers for the reproduction workloads (1 = the paper's serial engine; results identical either way)")
		outPath   = flag.String("out", "", "also write the markdown to this file")
		csvPath   = flag.String("csv", "", "also write every table as CSV (stable column order, table-ID-prefixed rows) to this file — the diffable form CI archives for before/after comparisons")
		listen    = flag.String("listen", "", "serve /debug/pprof and /metrics on this address for the duration of the run")
	)
	flag.Parse()
	bench.QueryWorkers = *workers

	if *listen != "" {
		srv, err := telemetry.New(telemetry.Config{}).Serve(*listen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "introspection server on http://%s/debug/pprof/\n", srv.Addr)
	}

	scale, err := bench.ScaleByName(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "building %s environment (ontology %d concepts)...\n", scale.Name, scale.OntologyConcepts)
	env, err := bench.NewEnv(scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v\n", time.Since(start).Round(time.Millisecond))

	tables, err := bench.Run(env, *exp)
	if err != nil {
		log.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# conceptrank experiments — scale %s, seed %d, %s\n\n", scale.Name, *seed, time.Now().Format("2006-01-02"))
	for _, t := range tables {
		sb.WriteString(t.Markdown())
	}
	fmt.Print(sb.String())
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(sb.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
	if *csvPath != "" {
		var cb strings.Builder
		for _, t := range tables {
			cb.WriteString(t.CSV())
		}
		if err := os.WriteFile(*csvPath, []byte(cb.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}
