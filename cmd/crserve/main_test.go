package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// testCorpus keeps every server in a test on the same tiny synthetic
// corpus, so local and distributed answers are comparable bitwise.
func testCorpus(cfg *config) {
	cfg.concepts = 300
	cfg.scale = 0.002
	cfg.seed = 7
	cfg.placement = "round-robin"
	cfg.runtimeIv = time.Hour // keep the sampler quiet in tests
}

// startApp builds and serves an app on a loopback port, returning its base
// URL, the app, and a shutdown function that drives the graceful path and
// reports its error.
func startApp(t *testing.T, cfg config) (string, *app, func() error) {
	t.Helper()
	a, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.run(ctx, ln) }()
	var once sync.Once
	var shutdownErr error
	shutdown := func() error {
		once.Do(func() {
			cancel()
			select {
			case shutdownErr = <-done:
			case <-time.After(15 * time.Second):
				shutdownErr = fmt.Errorf("server did not shut down")
			}
		})
		return shutdownErr
	}
	t.Cleanup(func() { _ = shutdown() })
	return "http://" + ln.Addr().String(), a, shutdown
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp
}

func TestHealthEndpoints(t *testing.T) {
	var cfg config
	testCorpus(&cfg)
	base, _, _ := startApp(t, cfg)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestGracefulShutdown is the regression test for the drain path: open a
// paged cursor, shut the server down, and require (a) a clean exit, (b)
// the cursor store drained, (c) the port actually released.
func TestGracefulShutdown(t *testing.T) {
	var cfg config
	testCorpus(&cfg)
	base, a, shutdown := startApp(t, cfg)

	var resp searchResponse
	getJSON(t, base+"/search?type=rds&ids=1,2&page=2", &resp)
	if resp.Cursor == "" {
		t.Fatal("paged search returned no cursor")
	}
	if got := a.store.len(); got != 1 {
		t.Fatalf("store has %d cursors, want 1", got)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if got := a.store.len(); got != 0 {
		t.Fatalf("store has %d cursors after drain, want 0", got)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

// TestDistributedServeEquivalence runs the full wiring the README
// describes — N node processes plus a coordinator — against a standalone
// server on the same corpus, and requires identical /search answers,
// including through a paged cursor.
func TestDistributedServeEquivalence(t *testing.T) {
	const shards = 2
	var peers []string
	for s := 0; s < shards; s++ {
		var cfg config
		testCorpus(&cfg)
		cfg.node = true
		cfg.shardIndex = s
		cfg.shardCount = shards
		base, _, _ := startApp(t, cfg)
		peers = append(peers, base)
	}
	var ccfg config
	testCorpus(&ccfg)
	ccfg.coordinator = true
	ccfg.peers = strings.Join(peers, ";")
	ccfg.retries = 1
	coordBase, _, _ := startApp(t, ccfg)

	var lcfg config
	testCorpus(&lcfg)
	localBase, _, _ := startApp(t, lcfg)

	for _, query := range []string{
		"/search?type=rds&ids=1,2,3&k=10&eps=0.5",
		"/search?type=rds&ids=42&k=5&eps=0.3",
		"/search?type=sds&doc=0&k=10&eps=0.5",
	} {
		var local, dist searchResponse
		getJSON(t, localBase+query, &local)
		getJSON(t, coordBase+query, &dist)
		if len(local.Results) != len(dist.Results) {
			t.Fatalf("%s: local %d results, distributed %d", query, len(local.Results), len(dist.Results))
		}
		for i := range local.Results {
			if local.Results[i] != dist.Results[i] {
				t.Fatalf("%s: result %d differs: local %+v distributed %+v",
					query, i, local.Results[i], dist.Results[i])
			}
		}
		if len(dist.Degraded) != 0 {
			t.Fatalf("%s: healthy cluster degraded %v", query, dist.Degraded)
		}
	}

	// Paged: first page + resumed page through the coordinator equals one
	// k=6 local answer.
	var full searchResponse
	getJSON(t, localBase+"/search?type=rds&ids=1,2,3&k=6&eps=0.5", &full)
	var page1 searchResponse
	getJSON(t, coordBase+"/search?type=rds&ids=1,2,3&eps=0.5&page=3", &page1)
	if page1.Cursor == "" {
		t.Fatal("coordinator paged search returned no cursor")
	}
	var page2 searchResponse
	getJSON(t, coordBase+"/search?cursor="+page1.Cursor+"&n=3", &page2)
	paged := append(page1.Results, page2.Results...)
	if len(paged) < len(full.Results) {
		t.Fatalf("paged %d results, want >= %d", len(paged), len(full.Results))
	}
	for i := range full.Results {
		if full.Results[i] != paged[i] {
			t.Fatalf("paged result %d differs: local %+v distributed %+v",
				i, full.Results[i], paged[i])
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("http://a:1,http://a:2; b:1 ;c:1,c:2")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"http://a:1", "http://a:2"},
		{"http://b:1"},
		{"http://c:1", "http://c:2"},
	}
	if len(peers) != len(want) {
		t.Fatalf("peers = %v", peers)
	}
	for i := range want {
		if len(peers[i]) != len(want[i]) {
			t.Fatalf("shard %d: %v, want %v", i, peers[i], want[i])
		}
		for j := range want[i] {
			if peers[i][j] != want[i][j] {
				t.Fatalf("shard %d replica %d: %q, want %q", i, j, peers[i][j], want[i][j])
			}
		}
	}
	if _, err := parsePeers(""); err == nil {
		t.Fatal("empty peers accepted")
	}
	if _, err := parsePeers("a;;b"); err == nil {
		t.Fatal("empty shard accepted")
	}
}
