// Command crserve runs a kNDS query server with live introspection: a
// /search endpoint next to the full telemetry surface (/metrics,
// /debug/vars, /debug/slowlog, /debug/runtime, /debug/pprof/*). It serves either a data
// directory written by crgen or, with no -data, a self-contained synthetic
// ontology + corpus — handy for demos and for watching the metrics move:
//
//	crserve -listen :6060                # synthetic corpus
//	crserve -listen :6060 -demo 100ms    # plus background demo traffic
//	crserve -listen :6060 -data data -corpus RADIO -shards 4
//
//	curl 'localhost:6060/search?type=rds&ids=42,99&k=10&eps=0.5'
//	curl localhost:6060/metrics
//	curl localhost:6060/debug/slowlog
//
// Paged search keeps a resumable cursor open server-side: page=N returns
// the first N results plus a resume token, and cursor=TOK&n=N fetches
// subsequent pages — each growing the saved top-k ranking in place rather
// than re-running the query:
//
//	curl 'localhost:6060/search?type=rds&ids=42,99&page=10'
//	curl 'localhost:6060/search?cursor=c1&n=10'
//
// The response's "done" field marks a drained ranking. Idle cursors expire
// after five minutes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"conceptrank"
)

// searcher is the slice of the engine surface the server needs; both
// Engine and ShardedEngine satisfy it via small adapters (their metrics
// and cursor types differ).
type searcher interface {
	rds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error)
	sds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error)
	openRDS(q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error)
	openSDS(q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error)
	numDocs() int
	docConcepts(id conceptrank.DocID) []conceptrank.ConceptID
}

// pager is the common paging surface of Cursor and ShardedCursor.
type pager interface {
	next(ctx context.Context, n int) ([]conceptrank.Result, error)
	metrics() *conceptrank.Metrics
	close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("crserve: ")
	var (
		listen    = flag.String("listen", ":6060", "HTTP listen address")
		data      = flag.String("data", "", "data directory written by crgen (empty = synthetic corpus)")
		corpusArg = flag.String("corpus", "RADIO", "collection within -data: PATIENT or RADIO")
		concepts  = flag.Int("concepts", 5000, "synthetic ontology size (no -data)")
		scale     = flag.Float64("corpus-scale", 0.05, "synthetic corpus scale (no -data; 1.0 = paper RADIO size)")
		seed      = flag.Int64("seed", 1, "synthetic generator seed")
		shards    = flag.Int("shards", 1, "partition the collection across N engines")
		placement = flag.String("placement", "round-robin", "shard placement policy")
		slowMS    = flag.Int("slow", 25, "slow-log latency threshold in milliseconds (0 = log every query)")
		cacheMB   = flag.Int("cache-mb", 0, "semantic-distance cache budget in MiB (0 = caching off)")
		demo      = flag.Duration("demo", 0, "fire a random background query this often (0 = off)")
		runtimeIv = flag.Duration("runtime-sample", 5*time.Second, "runtime/GC sampler cadence for /debug/runtime (0 = default 5s)")
		profSlow  = flag.Bool("profile-slow", false, "capture rate-limited pprof CPU/heap snapshots for slow queries")
	)
	flag.Parse()

	o, coll, err := loadOrGenerate(*data, *corpusArg, *concepts, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	slowThreshold := time.Duration(*slowMS) * time.Millisecond
	if *slowMS <= 0 {
		slowThreshold = time.Nanosecond // Config treats 0 as "use the default"
	}
	tel := conceptrank.NewTelemetry(conceptrank.TelemetryConfig{
		SlowThreshold:   slowThreshold,
		CaptureProfiles: *profSlow,
	})
	stopRuntime := tel.AttachRuntime(*runtimeIv)
	defer stopRuntime()
	var cc *conceptrank.Cache
	if *cacheMB > 0 {
		cc = conceptrank.NewCache(conceptrank.CacheConfig{MaxBytes: int64(*cacheMB) << 20})
		tel.AttachCache(cc)
	}

	var s searcher
	if *shards > 1 {
		pl, err := conceptrank.ParseShardPlacement(*placement)
		if err != nil {
			log.Fatal(err)
		}
		se, err := conceptrank.NewShardedEngine(o, coll, conceptrank.ShardConfig{Shards: *shards, Placement: pl})
		if err != nil {
			log.Fatal(err)
		}
		se.EnableTelemetry(tel)
		se.EnableCache(cc)
		s = &shardedSearcher{eng: se, coll: coll}
	} else {
		eng := conceptrank.NewEngine(o, coll)
		eng.EnableTelemetry(tel)
		eng.EnableCache(cc)
		s = &singleSearcher{eng: eng, coll: coll}
	}

	store := newCursorStore(256)
	go store.sweep(5 * time.Minute)

	mux := http.NewServeMux()
	mux.Handle("/", tel.Handler())
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		serveSearch(w, r, o, s, store)
	})

	if *demo > 0 {
		go demoTraffic(s, o, *demo, *seed)
	}

	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		log.Printf("serving %d docs on %s (search: /search, metrics: /metrics)", s.numDocs(), *listen)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	_ = srv.Close()
}

func loadOrGenerate(data, corpusName string, concepts int, scale float64, seed int64) (*conceptrank.Ontology, *conceptrank.Collection, error) {
	if data != "" {
		o, err := conceptrank.LoadOntology(filepath.Join(data, "ontology.cro"))
		if err != nil {
			return nil, nil, err
		}
		coll, err := conceptrank.LoadCollection(filepath.Join(data, strings.ToUpper(corpusName)+".crc"))
		return o, coll, err
	}
	o, err := conceptrank.GenerateOntology(conceptrank.OntologyConfig{NumConcepts: concepts, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	coll, err := conceptrank.GenerateCorpus(o, conceptrank.RadioProfile(scale, seed))
	return o, coll, err
}

type singleSearcher struct {
	eng  *conceptrank.Engine
	coll *conceptrank.Collection
}

func (s *singleSearcher) rds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error) {
	return s.eng.RDS(q, opts)
}
func (s *singleSearcher) sds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error) {
	return s.eng.SDS(q, opts)
}
func (s *singleSearcher) openRDS(q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.eng.OpenRDS(q, opts)
	if err != nil {
		return nil, err
	}
	return &singlePager{c}, nil
}
func (s *singleSearcher) openSDS(q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.eng.OpenSDS(q, opts)
	if err != nil {
		return nil, err
	}
	return &singlePager{c}, nil
}
func (s *singleSearcher) numDocs() int { return s.coll.NumDocs() }
func (s *singleSearcher) docConcepts(id conceptrank.DocID) []conceptrank.ConceptID {
	return s.coll.Doc(id).Concepts
}

type singlePager struct{ c *conceptrank.Cursor }

func (p *singlePager) next(ctx context.Context, n int) ([]conceptrank.Result, error) {
	return p.c.Next(ctx, n)
}
func (p *singlePager) metrics() *conceptrank.Metrics { return p.c.Metrics() }
func (p *singlePager) close()                        { _ = p.c.Close() }

type shardedSearcher struct {
	eng  *conceptrank.ShardedEngine
	coll *conceptrank.Collection
}

func (s *shardedSearcher) rds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error) {
	res, sm, err := s.eng.RDS(q, opts)
	return res, shardedMetrics(sm), err
}
func (s *shardedSearcher) sds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error) {
	res, sm, err := s.eng.SDS(q, opts)
	return res, shardedMetrics(sm), err
}
func (s *shardedSearcher) openRDS(q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.eng.OpenRDS(q, opts)
	if err != nil {
		return nil, err
	}
	return &shardedPager{c}, nil
}
func (s *shardedSearcher) openSDS(q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.eng.OpenSDS(q, opts)
	if err != nil {
		return nil, err
	}
	return &shardedPager{c}, nil
}
func (s *shardedSearcher) numDocs() int { return s.eng.NumDocs() }
func (s *shardedSearcher) docConcepts(id conceptrank.DocID) []conceptrank.ConceptID {
	return s.coll.Doc(id).Concepts
}

type shardedPager struct{ c *conceptrank.ShardedCursor }

func (p *shardedPager) next(ctx context.Context, n int) ([]conceptrank.Result, error) {
	return p.c.Next(ctx, n)
}
func (p *shardedPager) metrics() *conceptrank.Metrics { return &p.c.Metrics().Merged }
func (p *shardedPager) close()                        { _ = p.c.Close() }

func shardedMetrics(sm *conceptrank.ShardedMetrics) *conceptrank.Metrics {
	if sm == nil {
		return nil
	}
	return &sm.Merged
}

type searchResponse struct {
	Results []searchResult       `json:"results"`
	Metrics *conceptrank.Metrics `json:"metrics"`
	// Cursor is the resume token of a paged search: pass it back as
	// /search?cursor=TOK&n=N to fetch the next page. Omitted once the
	// ranking is drained.
	Cursor string `json:"cursor,omitempty"`
	// Done marks a drained paged search: the collection holds no more
	// rankable documents for this query.
	Done bool `json:"done,omitempty"`
}

type searchResult struct {
	Doc      int     `json:"doc"`
	Distance float64 `json:"distance"`
}

// cursorStore keeps open cursors between paged /search requests, keyed by
// an opaque token. Cursors idle past the TTL are swept; the oldest cursor
// is evicted when the store is full (the engine holds per-cursor traversal
// state, so the cap bounds server memory).
type cursorStore struct {
	mu      sync.Mutex
	seq     int64
	cursors map[string]*storedCursor
	cap     int
}

type storedCursor struct {
	p        pager
	lastUsed time.Time
}

func newCursorStore(capacity int) *cursorStore {
	return &cursorStore{cursors: make(map[string]*storedCursor), cap: capacity}
}

func (cs *cursorStore) put(p pager) string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.cursors) >= cs.cap {
		oldTok, oldAt := "", time.Time{}
		for tok, sc := range cs.cursors {
			if oldTok == "" || sc.lastUsed.Before(oldAt) {
				oldTok, oldAt = tok, sc.lastUsed
			}
		}
		cs.cursors[oldTok].p.close()
		delete(cs.cursors, oldTok)
	}
	cs.seq++
	tok := "c" + strconv.FormatInt(cs.seq, 36)
	cs.cursors[tok] = &storedCursor{p: p, lastUsed: time.Now()}
	return tok
}

// take removes the cursor from the store for the duration of one page
// fetch, so concurrent requests for the same token cannot interleave
// Next calls mid-flight; the caller puts it back with release.
func (cs *cursorStore) take(tok string) (pager, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	sc, ok := cs.cursors[tok]
	if !ok {
		return nil, false
	}
	delete(cs.cursors, tok)
	return sc.p, true
}

func (cs *cursorStore) release(tok string, p pager) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.cursors[tok] = &storedCursor{p: p, lastUsed: time.Now()}
}

func (cs *cursorStore) sweep(ttl time.Duration) {
	for range time.Tick(ttl / 4) {
		cutoff := time.Now().Add(-ttl)
		cs.mu.Lock()
		for tok, sc := range cs.cursors {
			if sc.lastUsed.Before(cutoff) {
				sc.p.close()
				delete(cs.cursors, tok)
			}
		}
		cs.mu.Unlock()
	}
}

func serveSearch(w http.ResponseWriter, r *http.Request, o *conceptrank.Ontology, s searcher, store *cursorStore) {
	qp := r.URL.Query()

	// Resume a paged search: /search?cursor=TOK&n=N.
	if tok := qp.Get("cursor"); tok != "" {
		n := 10
		if v := qp.Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 1 {
				httpError(w, http.StatusBadRequest, "bad n %q", v)
				return
			}
			n = parsed
		}
		p, ok := store.take(tok)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown or expired cursor %q", tok)
			return
		}
		page, err := p.next(r.Context(), n)
		if err != nil {
			store.release(tok, p) // context errors are resumable; keep the state
			httpError(w, http.StatusInternalServerError, "page failed: %v", err)
			return
		}
		resp := searchResponse{Metrics: p.metrics()}
		if len(page) < n {
			resp.Done = true
			p.close()
		} else {
			resp.Cursor = tok
			store.release(tok, p)
		}
		writeSearchResponse(w, resp, page)
		return
	}

	opts := conceptrank.Options{K: 10, ErrorThreshold: 0.5}
	if v := qp.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		opts.K = n
	}
	if v := qp.Get("eps"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			httpError(w, http.StatusBadRequest, "bad eps %q (want [0,1])", v)
			return
		}
		opts.ErrorThreshold = f
	}
	if v := qp.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad workers %q", v)
			return
		}
		opts.Workers = n
	}

	// page=N starts a paged search: the first N results come back with a
	// resume token for /search?cursor=TOK&n=N.
	pageSize := 0
	if v := qp.Get("page"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad page %q", v)
			return
		}
		pageSize = n
		opts.K = n
	}

	var (
		q   []conceptrank.ConceptID
		sds bool
	)
	switch typ := qp.Get("type"); typ {
	case "", "rds":
		for _, part := range strings.Split(qp.Get("ids"), ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, perr := strconv.ParseUint(part, 10, 32)
			if perr != nil || int(n) >= o.NumConcepts() {
				httpError(w, http.StatusBadRequest, "bad concept ID %q", part)
				return
			}
			q = append(q, conceptrank.ConceptID(n))
		}
		if len(q) == 0 {
			httpError(w, http.StatusBadRequest, "rds needs ids=1,2,...")
			return
		}
	case "sds":
		doc, perr := strconv.Atoi(qp.Get("doc"))
		if perr != nil || doc < 0 || doc >= s.numDocs() {
			httpError(w, http.StatusBadRequest, "sds needs doc in [0,%d)", s.numDocs())
			return
		}
		q, sds = s.docConcepts(conceptrank.DocID(doc)), true
	default:
		httpError(w, http.StatusBadRequest, "unknown type %q (want rds or sds)", typ)
		return
	}

	if pageSize > 0 {
		open := s.openRDS
		if sds {
			open = s.openSDS
		}
		p, err := open(q, opts)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "query failed: %v", err)
			return
		}
		page, err := p.next(r.Context(), pageSize)
		if err != nil {
			p.close()
			httpError(w, http.StatusInternalServerError, "query failed: %v", err)
			return
		}
		resp := searchResponse{Metrics: p.metrics()}
		if len(page) < pageSize {
			resp.Done = true
			p.close()
		} else {
			resp.Cursor = store.put(p)
		}
		writeSearchResponse(w, resp, page)
		return
	}

	var (
		results []conceptrank.Result
		m       *conceptrank.Metrics
		err     error
	)
	if sds {
		results, m, err = s.sds(q, opts)
	} else {
		results, m, err = s.rds(q, opts)
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	writeSearchResponse(w, searchResponse{Metrics: m}, results)
}

func writeSearchResponse(w http.ResponseWriter, resp searchResponse, results []conceptrank.Result) {
	resp.Results = make([]searchResult, len(results))
	for i, res := range results {
		resp.Results[i] = searchResult{Doc: int(res.Doc), Distance: res.Distance}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// demoTraffic fires random RDS/SDS queries so the telemetry surface has
// something to show out of the box.
func demoTraffic(s searcher, o *conceptrank.Ontology, every time.Duration, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for range time.Tick(every) {
		opts := conceptrank.Options{K: 1 + r.Intn(10), ErrorThreshold: r.Float64()}
		if r.Intn(4) == 0 && s.numDocs() > 0 {
			_, _, _ = s.sds(s.docConcepts(conceptrank.DocID(r.Intn(s.numDocs()))), opts)
			continue
		}
		q := make([]conceptrank.ConceptID, 1+r.Intn(4))
		for i := range q {
			q[i] = conceptrank.ConceptID(r.Intn(o.NumConcepts()))
		}
		_, _, _ = s.rds(q, opts)
	}
}
