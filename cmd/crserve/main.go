// Command crserve runs a kNDS query server with live introspection: a
// /search endpoint next to the full telemetry surface (/metrics,
// /debug/vars, /debug/slowlog, /debug/pprof/*). It serves either a data
// directory written by crgen or, with no -data, a self-contained synthetic
// ontology + corpus — handy for demos and for watching the metrics move:
//
//	crserve -listen :6060                # synthetic corpus
//	crserve -listen :6060 -demo 100ms    # plus background demo traffic
//	crserve -listen :6060 -data data -corpus RADIO -shards 4
//
//	curl 'localhost:6060/search?type=rds&ids=42,99&k=10&eps=0.5'
//	curl localhost:6060/metrics
//	curl localhost:6060/debug/slowlog
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"conceptrank"
)

// searcher is the slice of the engine surface the server needs; both
// Engine and ShardedEngine satisfy it via small adapters (their metrics
// types differ).
type searcher interface {
	rds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error)
	sds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error)
	numDocs() int
	docConcepts(id conceptrank.DocID) []conceptrank.ConceptID
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("crserve: ")
	var (
		listen    = flag.String("listen", ":6060", "HTTP listen address")
		data      = flag.String("data", "", "data directory written by crgen (empty = synthetic corpus)")
		corpusArg = flag.String("corpus", "RADIO", "collection within -data: PATIENT or RADIO")
		concepts  = flag.Int("concepts", 5000, "synthetic ontology size (no -data)")
		scale     = flag.Float64("corpus-scale", 0.05, "synthetic corpus scale (no -data; 1.0 = paper RADIO size)")
		seed      = flag.Int64("seed", 1, "synthetic generator seed")
		shards    = flag.Int("shards", 1, "partition the collection across N engines")
		placement = flag.String("placement", "round-robin", "shard placement policy")
		slowMS    = flag.Int("slow", 25, "slow-log latency threshold in milliseconds (0 = log every query)")
		demo      = flag.Duration("demo", 0, "fire a random background query this often (0 = off)")
	)
	flag.Parse()

	o, coll, err := loadOrGenerate(*data, *corpusArg, *concepts, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	slowThreshold := time.Duration(*slowMS) * time.Millisecond
	if *slowMS <= 0 {
		slowThreshold = time.Nanosecond // Config treats 0 as "use the default"
	}
	tel := conceptrank.NewTelemetry(conceptrank.TelemetryConfig{SlowThreshold: slowThreshold})

	var s searcher
	if *shards > 1 {
		pl, err := conceptrank.ParseShardPlacement(*placement)
		if err != nil {
			log.Fatal(err)
		}
		se, err := conceptrank.NewShardedEngine(o, coll, conceptrank.ShardConfig{Shards: *shards, Placement: pl})
		if err != nil {
			log.Fatal(err)
		}
		se.EnableTelemetry(tel)
		s = &shardedSearcher{eng: se, coll: coll}
	} else {
		eng := conceptrank.NewEngine(o, coll)
		eng.EnableTelemetry(tel)
		s = &singleSearcher{eng: eng, coll: coll}
	}

	mux := http.NewServeMux()
	mux.Handle("/", tel.Handler())
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		serveSearch(w, r, o, s)
	})

	if *demo > 0 {
		go demoTraffic(s, o, *demo, *seed)
	}

	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		log.Printf("serving %d docs on %s (search: /search, metrics: /metrics)", s.numDocs(), *listen)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	_ = srv.Close()
}

func loadOrGenerate(data, corpusName string, concepts int, scale float64, seed int64) (*conceptrank.Ontology, *conceptrank.Collection, error) {
	if data != "" {
		o, err := conceptrank.LoadOntology(filepath.Join(data, "ontology.cro"))
		if err != nil {
			return nil, nil, err
		}
		coll, err := conceptrank.LoadCollection(filepath.Join(data, strings.ToUpper(corpusName)+".crc"))
		return o, coll, err
	}
	o, err := conceptrank.GenerateOntology(conceptrank.OntologyConfig{NumConcepts: concepts, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	coll, err := conceptrank.GenerateCorpus(o, conceptrank.RadioProfile(scale, seed))
	return o, coll, err
}

type singleSearcher struct {
	eng  *conceptrank.Engine
	coll *conceptrank.Collection
}

func (s *singleSearcher) rds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error) {
	return s.eng.RDS(q, opts)
}
func (s *singleSearcher) sds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error) {
	return s.eng.SDS(q, opts)
}
func (s *singleSearcher) numDocs() int { return s.coll.NumDocs() }
func (s *singleSearcher) docConcepts(id conceptrank.DocID) []conceptrank.ConceptID {
	return s.coll.Doc(id).Concepts
}

type shardedSearcher struct {
	eng  *conceptrank.ShardedEngine
	coll *conceptrank.Collection
}

func (s *shardedSearcher) rds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error) {
	res, sm, err := s.eng.RDS(q, opts)
	return res, shardedMetrics(sm), err
}
func (s *shardedSearcher) sds(q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, error) {
	res, sm, err := s.eng.SDS(q, opts)
	return res, shardedMetrics(sm), err
}
func (s *shardedSearcher) numDocs() int { return s.eng.NumDocs() }
func (s *shardedSearcher) docConcepts(id conceptrank.DocID) []conceptrank.ConceptID {
	return s.coll.Doc(id).Concepts
}

func shardedMetrics(sm *conceptrank.ShardedMetrics) *conceptrank.Metrics {
	if sm == nil {
		return nil
	}
	return &sm.Merged
}

type searchResponse struct {
	Results []searchResult       `json:"results"`
	Metrics *conceptrank.Metrics `json:"metrics"`
}

type searchResult struct {
	Doc      int     `json:"doc"`
	Distance float64 `json:"distance"`
}

func serveSearch(w http.ResponseWriter, r *http.Request, o *conceptrank.Ontology, s searcher) {
	qp := r.URL.Query()
	opts := conceptrank.Options{K: 10, ErrorThreshold: 0.5}
	if v := qp.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		opts.K = n
	}
	if v := qp.Get("eps"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			httpError(w, http.StatusBadRequest, "bad eps %q (want [0,1])", v)
			return
		}
		opts.ErrorThreshold = f
	}
	if v := qp.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad workers %q", v)
			return
		}
		opts.Workers = n
	}

	var (
		results []conceptrank.Result
		m       *conceptrank.Metrics
		err     error
	)
	switch typ := qp.Get("type"); typ {
	case "", "rds":
		var ids []conceptrank.ConceptID
		for _, part := range strings.Split(qp.Get("ids"), ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, perr := strconv.ParseUint(part, 10, 32)
			if perr != nil || int(n) >= o.NumConcepts() {
				httpError(w, http.StatusBadRequest, "bad concept ID %q", part)
				return
			}
			ids = append(ids, conceptrank.ConceptID(n))
		}
		if len(ids) == 0 {
			httpError(w, http.StatusBadRequest, "rds needs ids=1,2,...")
			return
		}
		results, m, err = s.rds(ids, opts)
	case "sds":
		doc, perr := strconv.Atoi(qp.Get("doc"))
		if perr != nil || doc < 0 || doc >= s.numDocs() {
			httpError(w, http.StatusBadRequest, "sds needs doc in [0,%d)", s.numDocs())
			return
		}
		results, m, err = s.sds(s.docConcepts(conceptrank.DocID(doc)), opts)
	default:
		httpError(w, http.StatusBadRequest, "unknown type %q (want rds or sds)", typ)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}

	resp := searchResponse{Results: make([]searchResult, len(results)), Metrics: m}
	for i, res := range results {
		resp.Results[i] = searchResult{Doc: int(res.Doc), Distance: res.Distance}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// demoTraffic fires random RDS/SDS queries so the telemetry surface has
// something to show out of the box.
func demoTraffic(s searcher, o *conceptrank.Ontology, every time.Duration, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for range time.Tick(every) {
		opts := conceptrank.Options{K: 1 + r.Intn(10), ErrorThreshold: r.Float64()}
		if r.Intn(4) == 0 && s.numDocs() > 0 {
			_, _, _ = s.sds(s.docConcepts(conceptrank.DocID(r.Intn(s.numDocs()))), opts)
			continue
		}
		q := make([]conceptrank.ConceptID, 1+r.Intn(4))
		for i := range q {
			q[i] = conceptrank.ConceptID(r.Intn(o.NumConcepts()))
		}
		_, _, _ = s.rds(q, opts)
	}
}
