// Command crserve runs a kNDS query server with live introspection: a
// /search endpoint next to the full telemetry surface (/metrics,
// /debug/vars, /debug/slowlog, /debug/runtime, /debug/pprof/*), plus
// /healthz and /readyz probes. It serves either a data directory written
// by crgen or, with no -data, a self-contained synthetic ontology +
// corpus — handy for demos and for watching the metrics move:
//
//	crserve -listen :6060                # synthetic corpus
//	crserve -listen :6060 -demo 100ms    # plus background demo traffic
//	crserve -listen :6060 -data data -corpus RADIO -shards 4
//
//	curl 'localhost:6060/search?type=rds&ids=42,99&k=10&eps=0.5'
//	curl localhost:6060/metrics
//	curl localhost:6060/debug/slowlog
//
// Paged search keeps a resumable cursor open server-side: page=N returns
// the first N results plus a resume token, and cursor=TOK&n=N fetches
// subsequent pages — each growing the saved top-k ranking in place rather
// than re-running the query:
//
//	curl 'localhost:6060/search?type=rds&ids=42,99&page=10'
//	curl 'localhost:6060/search?cursor=c1&n=10'
//
// The response's "done" field marks a drained ranking. Idle cursors expire
// after five minutes.
//
// # Distributed serving
//
// The same binary runs the distributed tier. A -node serves one shard of
// the corpus over the versioned RPC protocol; a -coordinator fans /search
// out to the nodes and merges, bitwise identical to local execution:
//
//	crserve -node -shard-index 0 -shard-count 3 -listen :7001
//	crserve -node -shard-index 1 -shard-count 3 -listen :7002
//	crserve -node -shard-index 2 -shard-count 3 -listen :7003
//	crserve -coordinator -peers 'http://localhost:7001;http://localhost:7002;http://localhost:7003' -listen :6060
//
// In -peers, ';' separates shards and ',' separates replicas of one
// shard (hedged after -hedge). Every node must be started from the same
// corpus flags (-data or the synthetic generator settings) so the
// partition agrees. When nodes die mid-query and -partial is set, search
// responses carry a "degraded" field listing the shards the answer is
// missing. SIGINT/SIGTERM drain in-flight requests and open cursors
// before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"conceptrank"
)

// searcher is the slice of the engine surface the server needs; Engine,
// ShardedEngine, and the cluster Coordinator satisfy it via small
// adapters (their metrics and cursor types differ). The degraded slice
// lists shards missing from the answer (distributed partial results).
type searcher interface {
	rds(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, []int, error)
	sds(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, []int, error)
	openRDS(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error)
	openSDS(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error)
	numDocs() int
	docConcepts(ctx context.Context, id conceptrank.DocID) ([]conceptrank.ConceptID, error)
}

// pager is the common paging surface of the three cursor types.
type pager interface {
	next(ctx context.Context, n int) ([]conceptrank.Result, error)
	metrics() *conceptrank.Metrics
	degraded() []int
	close()
}

type config struct {
	listen    string
	data      string
	corpus    string
	concepts  int
	scale     float64
	seed      int64
	shards    int
	placement string
	slowMS    int
	cacheMB   int
	demo      time.Duration
	runtimeIv time.Duration
	profSlow  bool

	node       bool
	shardIndex int
	shardCount int

	coordinator bool
	peers       string
	hedge       time.Duration
	deadline    time.Duration
	retries     int
	partial     bool
	maxInflight int
	maxTenant   int
	shedLatency time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("crserve: ")
	var cfg config
	flag.StringVar(&cfg.listen, "listen", ":6060", "HTTP listen address")
	flag.StringVar(&cfg.data, "data", "", "data directory written by crgen (empty = synthetic corpus)")
	flag.StringVar(&cfg.corpus, "corpus", "RADIO", "collection within -data: PATIENT or RADIO")
	flag.IntVar(&cfg.concepts, "concepts", 5000, "synthetic ontology size (no -data)")
	flag.Float64Var(&cfg.scale, "corpus-scale", 0.05, "synthetic corpus scale (no -data; 1.0 = paper RADIO size)")
	flag.Int64Var(&cfg.seed, "seed", 1, "synthetic generator seed")
	flag.IntVar(&cfg.shards, "shards", 1, "partition the collection across N engines")
	flag.StringVar(&cfg.placement, "placement", "round-robin", "shard placement policy")
	flag.IntVar(&cfg.slowMS, "slow", 25, "slow-log latency threshold in milliseconds (0 = log every query)")
	flag.IntVar(&cfg.cacheMB, "cache-mb", 0, "semantic-distance cache budget in MiB (0 = caching off)")
	flag.DurationVar(&cfg.demo, "demo", 0, "fire a random background query this often (0 = off)")
	flag.DurationVar(&cfg.runtimeIv, "runtime-sample", 5*time.Second, "runtime/GC sampler cadence for /debug/runtime (0 = default 5s)")
	flag.BoolVar(&cfg.profSlow, "profile-slow", false, "capture rate-limited pprof CPU/heap snapshots for slow queries")
	flag.BoolVar(&cfg.node, "node", false, "serve one shard of the corpus over the cluster RPC protocol")
	flag.IntVar(&cfg.shardIndex, "shard-index", 0, "this node's shard (with -node)")
	flag.IntVar(&cfg.shardCount, "shard-count", 1, "total shards in the cluster (with -node)")
	flag.BoolVar(&cfg.coordinator, "coordinator", false, "serve /search by fanning out to -peers")
	flag.StringVar(&cfg.peers, "peers", "", "coordinator peers: ';' separates shards, ',' separates replicas")
	flag.DurationVar(&cfg.hedge, "hedge", 0, "hedge stateless RPCs to the next replica after this delay (0 = off)")
	flag.DurationVar(&cfg.deadline, "deadline", 5*time.Second, "per-RPC-attempt deadline (coordinator)")
	flag.IntVar(&cfg.retries, "retries", 2, "RPC retries on transient errors (coordinator)")
	flag.BoolVar(&cfg.partial, "partial", false, "degrade to flagged partial results when shards die (coordinator)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "admission: max concurrent queries, 0 = unlimited (coordinator)")
	flag.IntVar(&cfg.maxTenant, "max-per-tenant", 0, "admission: max concurrent queries per X-Tenant, 0 = unlimited (coordinator)")
	flag.DurationVar(&cfg.shedLatency, "shed-latency", 0, "admission: shed new queries while p99 exceeds this, 0 = off (coordinator)")
	flag.Parse()

	app, err := build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s on %s", app.banner, ln.Addr())
	if err := app.run(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}

// app is a fully wired crserve instance: the handler, the paged-cursor
// store to drain at shutdown, and teardown hooks. Tests build one without
// going through flags or signals.
type app struct {
	banner  string
	handler http.Handler
	store   *cursorStore // nil in -node mode
	cleanup []func()
}

// run serves until ctx is cancelled, then drains: in-flight requests get
// shutdownGrace to finish, parked cursors are closed, teardown hooks run.
func (a *app) run(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: a.handler}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := srv.Shutdown(sctx)
	if a.store != nil {
		a.store.drain()
	}
	for _, f := range a.cleanup {
		f()
	}
	return err
}

const shutdownGrace = 10 * time.Second

func build(cfg config) (*app, error) {
	if cfg.node && cfg.coordinator {
		return nil, errors.New("-node and -coordinator are mutually exclusive")
	}
	slowThreshold := time.Duration(cfg.slowMS) * time.Millisecond
	if cfg.slowMS <= 0 {
		slowThreshold = time.Nanosecond // Config treats 0 as "use the default"
	}
	tel := conceptrank.NewTelemetry(conceptrank.TelemetryConfig{
		SlowThreshold:   slowThreshold,
		CaptureProfiles: cfg.profSlow,
	})
	a := &app{cleanup: []func(){tel.AttachRuntime(cfg.runtimeIv)}}
	var cc *conceptrank.Cache
	if cfg.cacheMB > 0 {
		cc = conceptrank.NewCache(conceptrank.CacheConfig{MaxBytes: int64(cfg.cacheMB) << 20})
		tel.AttachCache(cc)
	}

	if cfg.coordinator {
		return buildCoordinator(cfg, a, tel)
	}

	o, coll, err := loadOrGenerate(cfg.data, cfg.corpus, cfg.concepts, cfg.scale, cfg.seed)
	if err != nil {
		return nil, err
	}
	if cfg.node {
		return buildNode(cfg, a, tel, cc, o, coll)
	}
	return buildLocal(cfg, a, tel, cc, o, coll)
}

// buildNode serves one shard of the corpus over the cluster RPC protocol.
// Every node of a cluster partitions the same corpus with the same flags,
// so the shards agree without a control plane.
func buildNode(cfg config, a *app, tel *conceptrank.Telemetry, cc *conceptrank.Cache,
	o *conceptrank.Ontology, coll *conceptrank.Collection) (*app, error) {
	if cfg.shardIndex < 0 || cfg.shardIndex >= cfg.shardCount {
		return nil, fmt.Errorf("-shard-index %d outside [0,%d)", cfg.shardIndex, cfg.shardCount)
	}
	pl, err := conceptrank.ParseShardPlacement(cfg.placement)
	if err != nil {
		return nil, err
	}
	colls, maps, err := conceptrank.PartitionCollection(coll,
		conceptrank.ShardConfig{Shards: cfg.shardCount, Placement: pl})
	if err != nil {
		return nil, err
	}
	node, err := conceptrank.NewClusterNode(conceptrank.ClusterNodeConfig{
		Ontology: o,
		Coll:     colls[cfg.shardIndex],
		DocMap:   maps[cfg.shardIndex],
		Cache:    cc,
		Registry: tel.Registry,
	})
	if err != nil {
		return nil, err
	}
	a.cleanup = append(a.cleanup, func() { _ = node.Close() })
	mux := http.NewServeMux()
	mux.Handle("/", tel.Handler())
	mux.Handle(conceptrank.ClusterRPCPrefix, node.Handler())
	conceptrank.ClusterHealthHandler(mux, nil)
	a.handler = mux
	a.banner = fmt.Sprintf("shard node %d/%d serving %d docs",
		cfg.shardIndex, cfg.shardCount, node.NumDocs())
	return a, nil
}

// buildCoordinator serves /search by fanning out to the -peers nodes.
func buildCoordinator(cfg config, a *app, tel *conceptrank.Telemetry) (*app, error) {
	peers, err := parsePeers(cfg.peers)
	if err != nil {
		return nil, err
	}
	ccfg := conceptrank.ClusterConfig{
		Peers:          peers,
		Deadline:       cfg.deadline,
		Retries:        cfg.retries,
		HedgeDelay:     cfg.hedge,
		PartialResults: cfg.partial,
		Admission: conceptrank.ClusterAdmissionConfig{
			MaxInFlight:  cfg.maxInflight,
			MaxPerTenant: cfg.maxTenant,
			ShedLatency:  cfg.shedLatency,
		},
	}
	conceptrank.ClusterTelemetry(&ccfg, tel)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	coord, err := conceptrank.NewCoordinator(ctx, ccfg)
	if err != nil {
		return nil, err
	}
	s := &coordSearcher{c: coord}
	a.store = newCursorStore(256)
	a.cleanup = append(a.cleanup, a.store.stopSweeper(5*time.Minute))
	mux := http.NewServeMux()
	mux.Handle("/", tel.Handler())
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		serveSearch(w, r, coordConceptRange{coord}, s, a.store)
	})
	conceptrank.ClusterHealthHandler(mux, nil)
	a.handler = mux
	a.banner = fmt.Sprintf("coordinator fronting %d shards, %d docs",
		coord.NumShards(), coord.NumDocs())
	return a, nil
}

// buildLocal is the classic standalone server: a single or sharded
// in-process engine behind /search.
func buildLocal(cfg config, a *app, tel *conceptrank.Telemetry, cc *conceptrank.Cache,
	o *conceptrank.Ontology, coll *conceptrank.Collection) (*app, error) {
	var s searcher
	if cfg.shards > 1 {
		pl, err := conceptrank.ParseShardPlacement(cfg.placement)
		if err != nil {
			return nil, err
		}
		se, err := conceptrank.NewShardedEngine(o, coll, conceptrank.ShardConfig{Shards: cfg.shards, Placement: pl})
		if err != nil {
			return nil, err
		}
		se.EnableTelemetry(tel)
		se.EnableCache(cc)
		s = &shardedSearcher{eng: se, coll: coll}
	} else {
		eng := conceptrank.NewEngine(o, coll)
		eng.EnableTelemetry(tel)
		eng.EnableCache(cc)
		s = &singleSearcher{eng: eng, coll: coll}
	}
	a.store = newCursorStore(256)
	a.cleanup = append(a.cleanup, a.store.stopSweeper(5*time.Minute))
	mux := http.NewServeMux()
	mux.Handle("/", tel.Handler())
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		serveSearch(w, r, o, s, a.store)
	})
	conceptrank.ClusterHealthHandler(mux, nil)
	a.handler = mux
	a.banner = fmt.Sprintf("serving %d docs (search: /search, metrics: /metrics)", s.numDocs())
	if cfg.demo > 0 {
		stopDemo := make(chan struct{})
		go demoTraffic(s, o, cfg.demo, cfg.seed, stopDemo)
		a.cleanup = append(a.cleanup, func() { close(stopDemo) })
	}
	return a, nil
}

// parsePeers splits "u1,u2;u3;u4,u5" into one replica list per shard.
func parsePeers(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-coordinator needs -peers (';' separates shards, ',' separates replicas)")
	}
	var peers [][]string
	for _, shardPart := range strings.Split(s, ";") {
		var replicas []string
		for _, u := range strings.Split(shardPart, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			replicas = append(replicas, strings.TrimRight(u, "/"))
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("empty shard in -peers %q", s)
		}
		peers = append(peers, replicas)
	}
	return peers, nil
}

func loadOrGenerate(data, corpusName string, concepts int, scale float64, seed int64) (*conceptrank.Ontology, *conceptrank.Collection, error) {
	if data != "" {
		o, err := conceptrank.LoadOntology(filepath.Join(data, "ontology.cro"))
		if err != nil {
			return nil, nil, err
		}
		coll, err := conceptrank.LoadCollection(filepath.Join(data, strings.ToUpper(corpusName)+".crc"))
		return o, coll, err
	}
	o, err := conceptrank.GenerateOntology(conceptrank.OntologyConfig{NumConcepts: concepts, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	coll, err := conceptrank.GenerateCorpus(o, conceptrank.RadioProfile(scale, seed))
	return o, coll, err
}

type singleSearcher struct {
	eng  *conceptrank.Engine
	coll *conceptrank.Collection
}

func (s *singleSearcher) rds(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, []int, error) {
	r, m, err := s.eng.RDSContext(ctx, q, opts)
	return r, m, nil, err
}
func (s *singleSearcher) sds(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, []int, error) {
	r, m, err := s.eng.SDSContext(ctx, q, opts)
	return r, m, nil, err
}
func (s *singleSearcher) openRDS(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.eng.OpenRDS(q, opts)
	if err != nil {
		return nil, err
	}
	return &singlePager{c}, nil
}
func (s *singleSearcher) openSDS(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.eng.OpenSDS(q, opts)
	if err != nil {
		return nil, err
	}
	return &singlePager{c}, nil
}
func (s *singleSearcher) numDocs() int { return s.coll.NumDocs() }
func (s *singleSearcher) docConcepts(ctx context.Context, id conceptrank.DocID) ([]conceptrank.ConceptID, error) {
	return s.coll.Doc(id).Concepts, nil
}

type singlePager struct{ c *conceptrank.Cursor }

func (p *singlePager) next(ctx context.Context, n int) ([]conceptrank.Result, error) {
	return p.c.Next(ctx, n)
}
func (p *singlePager) metrics() *conceptrank.Metrics { return p.c.Metrics() }
func (p *singlePager) degraded() []int               { return nil }
func (p *singlePager) close()                        { _ = p.c.Close() }

type shardedSearcher struct {
	eng  *conceptrank.ShardedEngine
	coll *conceptrank.Collection
}

func (s *shardedSearcher) rds(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, []int, error) {
	res, sm, err := s.eng.RDSContext(ctx, q, opts)
	return res, shardedMetrics(sm), shardedDegraded(sm), err
}
func (s *shardedSearcher) sds(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, []int, error) {
	res, sm, err := s.eng.SDSContext(ctx, q, opts)
	return res, shardedMetrics(sm), shardedDegraded(sm), err
}
func (s *shardedSearcher) openRDS(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.eng.OpenRDS(q, opts)
	if err != nil {
		return nil, err
	}
	return &shardedPager{c}, nil
}
func (s *shardedSearcher) openSDS(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.eng.OpenSDS(q, opts)
	if err != nil {
		return nil, err
	}
	return &shardedPager{c}, nil
}
func (s *shardedSearcher) numDocs() int { return s.eng.NumDocs() }
func (s *shardedSearcher) docConcepts(ctx context.Context, id conceptrank.DocID) ([]conceptrank.ConceptID, error) {
	return s.coll.Doc(id).Concepts, nil
}

type shardedPager struct{ c *conceptrank.ShardedCursor }

func (p *shardedPager) next(ctx context.Context, n int) ([]conceptrank.Result, error) {
	return p.c.Next(ctx, n)
}
func (p *shardedPager) metrics() *conceptrank.Metrics { return &p.c.Metrics().Merged }
func (p *shardedPager) degraded() []int               { return p.c.Metrics().Degraded }
func (p *shardedPager) close()                        { _ = p.c.Close() }

func shardedMetrics(sm *conceptrank.ShardedMetrics) *conceptrank.Metrics {
	if sm == nil {
		return nil
	}
	return &sm.Merged
}

func shardedDegraded(sm *conceptrank.ShardedMetrics) []int {
	if sm == nil {
		return nil
	}
	return sm.Degraded
}

// coordSearcher fronts the cluster coordinator. The X-Tenant header feeds
// per-tenant admission control upstream of this adapter (see serveSearch).
type coordSearcher struct{ c *conceptrank.Coordinator }

func (s *coordSearcher) rds(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, []int, error) {
	res, sm, err := s.c.RDS(ctx, q, opts)
	return res, shardedMetrics(sm), shardedDegraded(sm), err
}
func (s *coordSearcher) sds(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) ([]conceptrank.Result, *conceptrank.Metrics, []int, error) {
	res, sm, err := s.c.SDS(ctx, q, opts)
	return res, shardedMetrics(sm), shardedDegraded(sm), err
}
func (s *coordSearcher) openRDS(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.c.OpenRDS(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	return &coordPager{c}, nil
}
func (s *coordSearcher) openSDS(ctx context.Context, q []conceptrank.ConceptID, opts conceptrank.Options) (pager, error) {
	c, err := s.c.OpenSDS(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	return &coordPager{c}, nil
}
func (s *coordSearcher) numDocs() int { return s.c.NumDocs() }
func (s *coordSearcher) docConcepts(ctx context.Context, id conceptrank.DocID) ([]conceptrank.ConceptID, error) {
	return s.c.DocConcepts(ctx, id)
}

type coordPager struct{ c *conceptrank.ClusterCursor }

func (p *coordPager) next(ctx context.Context, n int) ([]conceptrank.Result, error) {
	return p.c.Next(ctx, n)
}
func (p *coordPager) metrics() *conceptrank.Metrics { return &p.c.Metrics().Merged }
func (p *coordPager) degraded() []int               { return p.c.Metrics().Degraded }
func (p *coordPager) close()                        { _ = p.c.Close() }

// conceptRange abstracts "how many concepts exist" so the coordinator
// mode (which has no local ontology) can validate query IDs too.
type conceptRange interface{ NumConcepts() int }

type coordConceptRange struct{ c *conceptrank.Coordinator }

func (r coordConceptRange) NumConcepts() int { return r.c.NumConcepts() }

type searchResponse struct {
	Results []searchResult       `json:"results"`
	Metrics *conceptrank.Metrics `json:"metrics"`
	// Cursor is the resume token of a paged search: pass it back as
	// /search?cursor=TOK&n=N to fetch the next page. Omitted once the
	// ranking is drained.
	Cursor string `json:"cursor,omitempty"`
	// Done marks a drained paged search: the collection holds no more
	// rankable documents for this query.
	Done bool `json:"done,omitempty"`
	// Degraded lists shards missing from a partial answer (nodes that died
	// mid-query under the coordinator's -partial policy).
	Degraded []int `json:"degraded,omitempty"`
}

type searchResult struct {
	Doc      int     `json:"doc"`
	Distance float64 `json:"distance"`
}

// cursorStore keeps open cursors between paged /search requests, keyed by
// an opaque token. Cursors idle past the TTL are swept; the oldest cursor
// is evicted when the store is full (the engine holds per-cursor traversal
// state, so the cap bounds server memory).
type cursorStore struct {
	mu      sync.Mutex
	seq     int64
	cursors map[string]*storedCursor
	cap     int
}

type storedCursor struct {
	p        pager
	lastUsed time.Time
}

func newCursorStore(capacity int) *cursorStore {
	return &cursorStore{cursors: make(map[string]*storedCursor), cap: capacity}
}

func (cs *cursorStore) put(p pager) string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.cursors) >= cs.cap {
		oldTok, oldAt := "", time.Time{}
		for tok, sc := range cs.cursors {
			if oldTok == "" || sc.lastUsed.Before(oldAt) {
				oldTok, oldAt = tok, sc.lastUsed
			}
		}
		cs.cursors[oldTok].p.close()
		delete(cs.cursors, oldTok)
	}
	cs.seq++
	tok := "c" + strconv.FormatInt(cs.seq, 36)
	cs.cursors[tok] = &storedCursor{p: p, lastUsed: time.Now()}
	return tok
}

// take removes the cursor from the store for the duration of one page
// fetch, so concurrent requests for the same token cannot interleave
// Next calls mid-flight; the caller puts it back with release.
func (cs *cursorStore) take(tok string) (pager, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	sc, ok := cs.cursors[tok]
	if !ok {
		return nil, false
	}
	delete(cs.cursors, tok)
	return sc.p, true
}

func (cs *cursorStore) release(tok string, p pager) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.cursors[tok] = &storedCursor{p: p, lastUsed: time.Now()}
}

func (cs *cursorStore) len() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.cursors)
}

// drain closes every parked cursor — the shutdown path, releasing engine
// traversal state (and, under a coordinator, the node-side cursors).
func (cs *cursorStore) drain() {
	cs.mu.Lock()
	cursors := cs.cursors
	cs.cursors = make(map[string]*storedCursor)
	cs.mu.Unlock()
	for _, sc := range cursors {
		sc.p.close()
	}
}

// stopSweeper starts the TTL sweep loop and returns its stop function.
func (cs *cursorStore) stopSweeper(ttl time.Duration) func() {
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(ttl / 4)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				cutoff := time.Now().Add(-ttl)
				cs.mu.Lock()
				var expired []pager
				for tok, sc := range cs.cursors {
					if sc.lastUsed.Before(cutoff) {
						expired = append(expired, sc.p)
						delete(cs.cursors, tok)
					}
				}
				cs.mu.Unlock()
				for _, p := range expired {
					p.close()
				}
			}
		}
	}()
	return func() { close(stop) }
}

func serveSearch(w http.ResponseWriter, r *http.Request, o conceptRange, s searcher, store *cursorStore) {
	qp := r.URL.Query()
	ctx := r.Context()
	if tenant := r.Header.Get("X-Tenant"); tenant != "" {
		ctx = conceptrank.WithTenant(ctx, tenant)
	}

	// Resume a paged search: /search?cursor=TOK&n=N.
	if tok := qp.Get("cursor"); tok != "" {
		n := 10
		if v := qp.Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 1 {
				httpError(w, http.StatusBadRequest, "bad n %q", v)
				return
			}
			n = parsed
		}
		p, ok := store.take(tok)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown or expired cursor %q", tok)
			return
		}
		page, err := p.next(ctx, n)
		if err != nil {
			store.release(tok, p) // context errors are resumable; keep the state
			httpError(w, http.StatusInternalServerError, "page failed: %v", err)
			return
		}
		resp := searchResponse{Metrics: p.metrics(), Degraded: p.degraded()}
		if len(page) < n {
			resp.Done = true
			p.close()
		} else {
			resp.Cursor = tok
			store.release(tok, p)
		}
		writeSearchResponse(w, resp, page)
		return
	}

	opts := conceptrank.Options{K: 10, ErrorThreshold: 0.5}
	if v := qp.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		opts.K = n
	}
	if v := qp.Get("eps"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			httpError(w, http.StatusBadRequest, "bad eps %q (want [0,1])", v)
			return
		}
		opts.ErrorThreshold = f
	}
	if v := qp.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad workers %q", v)
			return
		}
		opts.Workers = n
	}

	// page=N starts a paged search: the first N results come back with a
	// resume token for /search?cursor=TOK&n=N.
	pageSize := 0
	if v := qp.Get("page"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad page %q", v)
			return
		}
		pageSize = n
		opts.K = n
	}

	var (
		q   []conceptrank.ConceptID
		sds bool
	)
	switch typ := qp.Get("type"); typ {
	case "", "rds":
		for _, part := range strings.Split(qp.Get("ids"), ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, perr := strconv.ParseUint(part, 10, 32)
			if perr != nil || int(n) >= o.NumConcepts() {
				httpError(w, http.StatusBadRequest, "bad concept ID %q", part)
				return
			}
			q = append(q, conceptrank.ConceptID(n))
		}
		if len(q) == 0 {
			httpError(w, http.StatusBadRequest, "rds needs ids=1,2,...")
			return
		}
	case "sds":
		doc, perr := strconv.Atoi(qp.Get("doc"))
		if perr != nil || doc < 0 || doc >= s.numDocs() {
			httpError(w, http.StatusBadRequest, "sds needs doc in [0,%d)", s.numDocs())
			return
		}
		concepts, err := s.docConcepts(ctx, conceptrank.DocID(doc))
		if err != nil {
			httpError(w, http.StatusInternalServerError, "doc lookup failed: %v", err)
			return
		}
		q, sds = concepts, true
	default:
		httpError(w, http.StatusBadRequest, "unknown type %q (want rds or sds)", typ)
		return
	}

	if pageSize > 0 {
		open := s.openRDS
		if sds {
			open = s.openSDS
		}
		p, err := open(ctx, q, opts)
		if err != nil {
			searchError(w, err)
			return
		}
		page, err := p.next(ctx, pageSize)
		if err != nil {
			p.close()
			searchError(w, err)
			return
		}
		resp := searchResponse{Metrics: p.metrics(), Degraded: p.degraded()}
		if len(page) < pageSize {
			resp.Done = true
			p.close()
		} else {
			resp.Cursor = store.put(p)
		}
		writeSearchResponse(w, resp, page)
		return
	}

	var (
		results  []conceptrank.Result
		m        *conceptrank.Metrics
		degraded []int
		err      error
	)
	if sds {
		results, m, degraded, err = s.sds(ctx, q, opts)
	} else {
		results, m, degraded, err = s.rds(ctx, q, opts)
	}
	if err != nil {
		searchError(w, err)
		return
	}
	writeSearchResponse(w, searchResponse{Metrics: m, Degraded: degraded}, results)
}

// searchError maps engine errors to HTTP statuses: shed queries are 429
// (retry later), everything else a 500.
func searchError(w http.ResponseWriter, err error) {
	if errors.Is(err, conceptrank.ErrClusterOverloaded) {
		httpError(w, http.StatusTooManyRequests, "overloaded: %v", err)
		return
	}
	httpError(w, http.StatusInternalServerError, "query failed: %v", err)
}

func writeSearchResponse(w http.ResponseWriter, resp searchResponse, results []conceptrank.Result) {
	resp.Results = make([]searchResult, len(results))
	for i, res := range results {
		resp.Results[i] = searchResult{Doc: int(res.Doc), Distance: res.Distance}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// demoTraffic fires random RDS/SDS queries so the telemetry surface has
// something to show out of the box.
func demoTraffic(s searcher, o conceptRange, every time.Duration, seed int64, stop <-chan struct{}) {
	r := rand.New(rand.NewSource(seed))
	t := time.NewTicker(every)
	defer t.Stop()
	ctx := context.Background()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		opts := conceptrank.Options{K: 1 + r.Intn(10), ErrorThreshold: r.Float64()}
		if r.Intn(4) == 0 && s.numDocs() > 0 {
			if concepts, err := s.docConcepts(ctx, conceptrank.DocID(r.Intn(s.numDocs()))); err == nil {
				_, _, _, _ = s.sds(ctx, concepts, opts)
			}
			continue
		}
		q := make([]conceptrank.ConceptID, 1+r.Intn(4))
		for i := range q {
			q[i] = conceptrank.ConceptID(r.Intn(o.NumConcepts()))
		}
		_, _, _, _ = s.rds(ctx, q, opts)
	}
}
