// Command crsearch runs RDS and SDS queries against a data directory
// written by crgen, using the disk-backed indexes.
//
// Usage:
//
//	crsearch -data data -corpus RADIO -type rds -query "term one,term two" -k 10
//	crsearch -data data -corpus PATIENT -type sds -doc 17 -k 5
//	crsearch -data data -corpus RADIO -type rds -ids 120,4711 -eps 0.9
//	crsearch -data data -corpus RADIO -type rds -ids 120 -k 50 -page 10
//	crsearch -data data -corpus PATIENT -pairs -k 10 -shards 4
//	crsearch -data data -corpus RADIO -type rds -ids 120 -measure density
//
// -page N streams the top -k through a resumable cursor, N results at a
// time: each page resumes the saved traversal rather than re-running the
// query, and the concatenated pages equal the one-shot ranking exactly.
//
// -pairs ignores the query flags and instead reports the k most similar
// document pairs in the whole collection (the bounded all-pairs SDS
// join); with -shards N the join is block-partitioned and the result is
// identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strconv"
	"strings"

	"conceptrank"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crsearch: ")
	var (
		data      = flag.String("data", "data", "data directory written by crgen")
		corpusArg = flag.String("corpus", "RADIO", "collection: PATIENT or RADIO")
		queryType = flag.String("type", "rds", "query type: rds or sds")
		query     = flag.String("query", "", "comma-separated concept terms (rds)")
		ids       = flag.String("ids", "", "comma-separated concept IDs (rds)")
		docID     = flag.Int("doc", -1, "query document ID (sds)")
		k         = flag.Int("k", 10, "number of results")
		eps       = flag.Float64("eps", 0.5, "kNDS error threshold")
		workers   = flag.Int("workers", 0, "intra-query DRC workers (0 = GOMAXPROCS, 1 = serial; results identical)")
		baseline  = flag.Bool("baseline", false, "also run the full-scan baseline and compare")
		page      = flag.Int("page", 0, "page size: stream the top -k through a resumable cursor, -page results at a time (0 = one-shot)")
		shards    = flag.Int("shards", 1, "partition the collection across N parallel engines (results identical)")
		placement = flag.String("placement", "round-robin", "shard placement policy: round-robin or size-balanced")
		listen    = flag.String("listen", "", "serve /metrics, /debug/slowlog and /debug/pprof on this address; keeps running after the query")
		cacheMB   = flag.Int("cache-mb", 0, "semantic-distance cache budget in MiB (0 = caching off)")
		pairs     = flag.Bool("pairs", false, "top-k most similar document pairs over the whole collection (ignores -type/-query/-ids/-doc)")
		measName  = flag.String("measure", "rada", "semantic distance measure: rada, density or enhanced")
	)
	flag.Parse()

	var cc *conceptrank.Cache
	if *cacheMB > 0 {
		cc = conceptrank.NewCache(conceptrank.CacheConfig{MaxBytes: int64(*cacheMB) << 20})
	}
	var tel *conceptrank.Telemetry
	if *listen != "" {
		tel = conceptrank.NewTelemetry(conceptrank.TelemetryConfig{})
		if cc != nil {
			tel.AttachCache(cc)
		}
		srv, err := tel.Serve(*listen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("introspection server on http://%s/metrics\n", srv.Addr)
	}

	o, err := conceptrank.LoadOntology(filepath.Join(*data, "ontology.cro"))
	if err != nil {
		log.Fatal(err)
	}
	coll, err := conceptrank.LoadCollection(filepath.Join(*data, strings.ToUpper(*corpusArg)+".crc"))
	if err != nil {
		log.Fatal(err)
	}
	eng := conceptrank.NewEngine(o, coll)
	eng.EnableTelemetry(tel)
	eng.EnableCache(cc)

	if *pairs {
		runPairs(o, coll, eng, cc, *k, *eps, *workers, *shards, *placement)
		if *listen != "" {
			fmt.Println("query done; introspection server still running (ctrl-c to exit)")
			select {}
		}
		return
	}

	var concepts []conceptrank.ConceptID
	switch strings.ToLower(*queryType) {
	case "rds":
		for _, term := range splitNonEmpty(*query) {
			c, ok := conceptrank.FindConcept(o, term)
			if !ok {
				log.Fatalf("unknown concept term %q", term)
			}
			concepts = append(concepts, c)
		}
		for _, s := range splitNonEmpty(*ids) {
			n, err := strconv.ParseUint(s, 10, 32)
			if err != nil || int(n) >= o.NumConcepts() {
				log.Fatalf("bad concept ID %q", s)
			}
			concepts = append(concepts, conceptrank.ConceptID(n))
		}
		if len(concepts) == 0 {
			log.Fatal("rds query needs -query terms or -ids")
		}
	case "sds":
		if *docID < 0 || *docID >= coll.NumDocs() {
			log.Fatalf("sds query needs -doc in [0,%d)", coll.NumDocs())
		}
		concepts = coll.Doc(conceptrank.DocID(*docID)).Concepts
	default:
		log.Fatalf("unknown query type %q", *queryType)
	}

	fmt.Printf("query (%s, %d concepts):", strings.ToUpper(*queryType), len(concepts))
	for i, c := range concepts {
		if i >= 5 {
			fmt.Printf(" ... (+%d more)", len(concepts)-5)
			break
		}
		fmt.Printf(" %q", o.Name(c))
	}
	fmt.Println()

	opts := conceptrank.Options{K: *k, ErrorThreshold: *eps, Workers: *workers}
	switch strings.ToLower(*measName) {
	case "", "rada": // the default: nil Measure keeps the DRC fast path
	case "density":
		opts.Measure = conceptrank.NewDensityMeasure(o)
	case "enhanced":
		opts.Measure = conceptrank.NewEnhancedMeasure(o)
	default:
		log.Fatalf("unknown measure %q (want rada, density or enhanced)", *measName)
	}
	sds := strings.ToLower(*queryType) == "sds"
	var results []conceptrank.Result
	var m *conceptrank.Metrics
	if *page > 0 {
		results, m = runPaged(o, coll, eng, tel, sds, concepts, opts, *page, *shards, *placement)
	} else if *shards > 1 {
		pl, perr := conceptrank.ParseShardPlacement(*placement)
		if perr != nil {
			log.Fatal(perr)
		}
		seng, serr := conceptrank.NewShardedEngine(o, coll, conceptrank.ShardConfig{Shards: *shards, Placement: pl})
		if serr != nil {
			log.Fatal(serr)
		}
		seng.EnableTelemetry(tel)
		var sm *conceptrank.ShardedMetrics
		if sds {
			results, sm, err = seng.SDS(concepts, opts)
		} else {
			results, sm, err = seng.RDS(concepts, opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		m = &sm.Merged
		fmt.Printf("sharded: %d shards (%s), %d cancelled early by the cross-shard bound\n",
			seng.NumShards(), pl, sm.CancelledShards)
		for s, pm := range sm.PerShard {
			fmt.Printf("  shard %d: %v total, examined %d of %d discovered\n",
				s, pm.TotalTime.Round(1000), pm.DocsExamined, pm.DocsDiscovered)
		}
	} else if sds {
		results, m, err = eng.SDS(concepts, opts)
	} else {
		results, m, err = eng.RDS(concepts, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *page == 0 { // paged mode already printed page-delimited results
		for i, r := range results {
			fmt.Printf("%2d. doc %-6d %-24s distance %.4f\n", i+1, r.Doc, coll.Doc(r.Doc).Name, r.Distance)
		}
	}
	fmt.Printf("\nkNDS: %v total (%v distance calc, %v traversal, %v io); examined %d of %d discovered; %d DRC calls",
		m.TotalTime.Round(1000), m.DistanceTime.Round(1000), m.TraversalTime.Round(1000), m.IOTime.Round(1000),
		m.DocsExamined, m.DocsDiscovered, m.DRCCalls)
	if m.SpeculativeDRC > 0 {
		fmt.Printf(" (%d speculative)", m.SpeculativeDRC)
	}
	fmt.Println()

	if *baseline {
		var scan []conceptrank.Result
		var bm *conceptrank.Metrics
		if sds {
			scan, bm, err = eng.FullScanSDS(concepts, conceptrank.WithK(*k), conceptrank.WithMeasure(opts.Measure))
		} else {
			scan, bm, err = eng.FullScanRDS(concepts, conceptrank.WithK(*k), conceptrank.WithMeasure(opts.Measure))
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline full scan: %v total, %d docs examined\n", bm.TotalTime.Round(1000), bm.DocsExamined)
		for i := range results {
			if results[i].Distance != scan[i].Distance {
				log.Fatalf("MISMATCH at rank %d: kNDS %v vs baseline %v", i, results[i], scan[i])
			}
		}
		fmt.Println("baseline agrees with kNDS.")
	}

	if *listen != "" {
		fmt.Println("query done; introspection server still running (ctrl-c to exit)")
		select {}
	}
}

// runPairs answers "which k documents in the collection are most similar
// to each other?" with the bounded all-pairs join: single-engine when
// shards == 1, block-partitioned otherwise. Either path returns the same
// pairs, the same distances, the same order.
func runPairs(o *conceptrank.Ontology, coll *conceptrank.Collection, eng *conceptrank.Engine, cc *conceptrank.Cache, k int, eps float64, workers, shards int, placement string) {
	opts := conceptrank.PairOptions{K: k, ErrorThreshold: eps, Workers: workers, Cache: cc}
	ctx := context.Background()
	var (
		res []conceptrank.PairResult
		m   *conceptrank.PairMetrics
		err error
	)
	if shards > 1 {
		pl, perr := conceptrank.ParseShardPlacement(placement)
		if perr != nil {
			log.Fatal(perr)
		}
		seng, serr := conceptrank.NewShardedEngine(o, coll, conceptrank.ShardConfig{Shards: shards, Placement: pl})
		if serr != nil {
			log.Fatal(serr)
		}
		fmt.Printf("pair join (%d docs, %d shards, %s placement):\n", coll.NumDocs(), shards, pl)
		res, m, err = seng.TopKPairs(ctx, opts)
	} else {
		fmt.Printf("pair join (%d docs):\n", coll.NumDocs())
		res, m, err = eng.TopKPairs(ctx, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range res {
		fmt.Printf("%2d. %-24s ~ %-24s distance %.4f\n",
			i+1, coll.Doc(p.A).Name, coll.Doc(p.B).Name, p.Distance)
	}
	fmt.Printf("\npair join: %v total (%v seeds, %v join); examined %d of %d pairs (%.2f%%), pruned %d; %d levels, %d of %d block tasks cancelled\n",
		m.TotalTime.Round(1000), m.SeedTime.Round(1000), m.JoinTime.Round(1000),
		m.PairsExamined, m.TotalPairs, 100*m.EvaluatedFraction(), m.PairsPruned,
		m.Levels, m.CancelledBlocks, m.Blocks)
	if m.CacheHits+m.CacheMisses > 0 {
		fmt.Printf("cache: %d hits, %d misses\n", m.CacheHits, m.CacheMisses)
	}
}

// runPaged streams the top k through a resumable cursor, page results at a
// time: each Next resumes the saved traversal state and grows the ranking
// in place, so the concatenated pages are exactly the one-shot top-k. The
// cursor is opened with K = page; later pages extend it via the cursor's
// auto-grow rather than re-running the query.
func runPaged(o *conceptrank.Ontology, coll *conceptrank.Collection, eng *conceptrank.Engine, tel *conceptrank.Telemetry, sds bool, concepts []conceptrank.ConceptID, opts conceptrank.Options, page, shards int, placement string) ([]conceptrank.Result, *conceptrank.Metrics) {
	k := opts.K
	opts.K = page
	var (
		next    func(context.Context, int) ([]conceptrank.Result, error)
		metrics func() *conceptrank.Metrics
		closeFn func()
	)
	if shards > 1 {
		pl, err := conceptrank.ParseShardPlacement(placement)
		if err != nil {
			log.Fatal(err)
		}
		seng, err := conceptrank.NewShardedEngine(o, coll, conceptrank.ShardConfig{Shards: shards, Placement: pl})
		if err != nil {
			log.Fatal(err)
		}
		seng.EnableTelemetry(tel)
		open := seng.OpenRDS
		if sds {
			open = seng.OpenSDS
		}
		cur, err := open(concepts, opts)
		if err != nil {
			log.Fatal(err)
		}
		next, closeFn = cur.Next, func() { cur.Close() }
		metrics = func() *conceptrank.Metrics { return &cur.Metrics().Merged }
		fmt.Printf("sharded: %d shards (%s), paged by %d\n", seng.NumShards(), pl, page)
	} else {
		open := eng.OpenRDS
		if sds {
			open = eng.OpenSDS
		}
		cur, err := open(concepts, opts)
		if err != nil {
			log.Fatal(err)
		}
		next, closeFn = cur.Next, func() { cur.Close() }
		metrics = cur.Metrics
	}
	defer closeFn()

	ctx := context.Background()
	var results []conceptrank.Result
	for pageNo := 1; len(results) < k; pageNo++ {
		n := page
		if rem := k - len(results); rem < n {
			n = rem
		}
		res, err := next(ctx, n)
		if err != nil {
			log.Fatal(err)
		}
		if len(res) == 0 {
			fmt.Printf("-- ranking drained after %d results --\n", len(results))
			break
		}
		fmt.Printf("-- page %d --\n", pageNo)
		for i, r := range res {
			fmt.Printf("%2d. doc %-6d %-24s distance %.4f\n",
				len(results)+i+1, r.Doc, coll.Doc(r.Doc).Name, r.Distance)
		}
		results = append(results, res...)
	}
	return results, metrics()
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
