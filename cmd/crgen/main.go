// Command crgen generates the synthetic experiment data: a calibrated
// SNOMED-like ontology plus the PATIENT and RADIO collections, and writes
// them (with disk-backed indexes) into a data directory for crstats,
// crsearch and crbench.
//
// Usage:
//
//	crgen -out data -scale small [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"conceptrank"
	"conceptrank/internal/bench"
	"conceptrank/internal/emrgen"
	"conceptrank/internal/index"
	"conceptrank/internal/ontogen"
	"conceptrank/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crgen: ")
	var (
		out       = flag.String("out", "data", "output directory")
		scaleName = flag.String("scale", "small", "data scale: small, medium or paper")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	scale, err := bench.ScaleByName(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generating ontology (%d concepts)...\n", scale.OntologyConcepts)
	o, err := ontogen.Generate(ontogen.Config{NumConcepts: scale.OntologyConcepts, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	if err := conceptrank.SaveOntology(filepath.Join(*out, "ontology.cro"), o); err != nil {
		log.Fatal(err)
	}
	s := o.ComputeStats()
	fmt.Printf("  concepts=%d edges=%d avgChildren=%.2f paths/concept=%.2f pathLen=%.2f\n",
		s.Concepts, s.Edges, s.AvgChildrenInternal, s.AvgPathsPerConcept, s.AvgPathLen)

	for _, profile := range []emrgen.Profile{scale.Patient, scale.Radio} {
		fmt.Printf("generating %s (%d docs)...\n", profile.Name, profile.NumDocs)
		coll, err := emrgen.GenerateConceptSets(o, profile)
		if err != nil {
			log.Fatal(err)
		}
		// Apply the paper's default filters at generation time so every
		// tool sees the same collection.
		cfg := index.FilterConfig{MinDepth: 4, CFThreshold: index.MuSigmaCF(coll)}
		filtered, fstats := index.ApplyFilter(coll, o, cfg)
		fmt.Printf("  filters: %d concepts kept of %d (depth removed %d, cf removed %d)\n",
			fstats.ConceptsKept, fstats.ConceptsBefore, fstats.RemovedByDepth, fstats.RemovedByCF)

		base := filepath.Join(*out, profile.Name)
		if err := conceptrank.SaveCollection(base+".crc", filtered); err != nil {
			log.Fatal(err)
		}
		if err := store.BuildInvertedFile(base+".inv", filtered); err != nil {
			log.Fatal(err)
		}
		if err := store.BuildForwardFile(base+".fwd", filtered); err != nil {
			log.Fatal(err)
		}
		cs := filtered.ComputeStats()
		fmt.Printf("  %s\n", cs)
	}
	fmt.Printf("wrote %s\n", *out)
}
