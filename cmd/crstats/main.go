// Command crstats prints the corpus statistics (Table 3) and ontology
// statistics (Section 6.1) for a data directory written by crgen.
//
// Usage:
//
//	crstats -data data
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"conceptrank"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crstats: ")
	data := flag.String("data", "data", "data directory written by crgen")
	flag.Parse()

	o, err := conceptrank.LoadOntology(filepath.Join(*data, "ontology.cro"))
	if err != nil {
		log.Fatal(err)
	}
	s := o.ComputeStats()
	fmt.Println("Ontology (paper SNOMED-CT: 296433 concepts, 4.53 avg children, 9.78 paths, length 14.1):")
	fmt.Printf("  concepts=%d edges=%d leaves=%d maxDepth=%d\n", s.Concepts, s.Edges, s.Leaves, s.MaxDepth)
	fmt.Printf("  avgChildren(internal)=%.2f avgParents=%.3f paths/concept=%.2f avgPathLen=%.2f\n",
		s.AvgChildrenInternal, s.AvgParents, s.AvgPathsPerConcept, s.AvgPathLen)
	fmt.Println()

	fmt.Println("Table 3 — document corpus statistics:")
	fmt.Printf("  %-24s %12s %12s\n", "", "PATIENT", "RADIO")
	type row struct {
		label          string
		patient, radio string
	}
	var rows []row
	for _, name := range []string{"PATIENT", "RADIO"} {
		coll, err := conceptrank.LoadCollection(filepath.Join(*data, name+".crc"))
		if err != nil {
			log.Fatal(err)
		}
		cs := coll.ComputeStats()
		vals := []string{
			fmt.Sprintf("%d", cs.TotalDocuments),
			fmt.Sprintf("%d", cs.DistinctConcepts),
			fmt.Sprintf("%.1f", cs.AvgTokensPerDoc),
			fmt.Sprintf("%.1f", cs.AvgConceptsPerDoc),
		}
		labels := []string{"Total Documents", "Total Concepts", "Avg. Tokens/Document", "Avg. Concepts/Document"}
		for i, l := range labels {
			if name == "PATIENT" {
				rows = append(rows, row{label: l, patient: vals[i]})
			} else {
				rows[i].radio = vals[i]
			}
		}
	}
	for _, r := range rows {
		fmt.Printf("  %-24s %12s %12s\n", r.label, r.patient, r.radio)
	}
}
