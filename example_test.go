package conceptrank_test

import (
	"context"
	"fmt"

	"conceptrank"
)

// paperOntology builds the running-example ontology of the paper's
// Figure 3 (22 concepts, one multi-parent node).
func paperOntology() (*conceptrank.Ontology, map[string]conceptrank.ConceptID) {
	b := conceptrank.NewOntologyBuilder("A")
	ids := map[string]conceptrank.ConceptID{"A": b.Root()}
	for _, l := range []string{"B", "C", "D", "E", "F", "G", "H", "I", "J", "K",
		"L", "M", "N", "O", "P", "Q", "R", "S", "T", "U", "V"} {
		ids[l] = b.AddConcept(l)
	}
	for _, e := range [][2]string{
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "E"}, {"E", "G"},
		{"G", "I"}, {"G", "J"}, {"D", "F"}, {"F", "J"}, {"F", "H"},
		{"I", "M"}, {"I", "N"}, {"J", "K"}, {"J", "O"}, {"K", "R"},
		{"R", "U"}, {"O", "S"}, {"S", "V"}, {"H", "P"}, {"H", "L"},
		{"P", "Q"}, {"Q", "T"},
	} {
		b.MustAddEdge(ids[e[0]], ids[e[1]])
	}
	o, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return o, ids
}

// The shortest valid path between two concepts must pass through a common
// ancestor — D(G,F) is 5, not the undirected 2 (Section 3.2 of the paper).
func ExampleConceptDistance() {
	o, ids := paperOntology()
	fmt.Println(conceptrank.ConceptDistance(o, ids["G"], ids["F"]))
	// Output: 5
}

// Example 1 of the paper: Ddq({F,R,T,V}, {I,L,U}) = 4 + 2 + 1 = 7.
func ExampleDocQueryDistance() {
	o, ids := paperOntology()
	d := []conceptrank.ConceptID{ids["F"], ids["R"], ids["T"], ids["V"]}
	q := []conceptrank.ConceptID{ids["I"], ids["L"], ids["U"]}
	fmt.Println(conceptrank.DocQueryDistance(o, d, q))
	// Output: 7
}

// A relevance query over a small indexed collection.
func ExampleEngine_RDS() {
	o, ids := paperOntology()
	coll := conceptrank.NewCollection()
	coll.Add("note-1", 0, []conceptrank.ConceptID{ids["I"], ids["T"]})
	coll.Add("note-2", 0, []conceptrank.ConceptID{ids["F"], ids["E"]})
	coll.Add("note-3", 0, []conceptrank.ConceptID{ids["G"], ids["J"]})
	eng := conceptrank.NewEngine(o, coll)

	results, _, _ := eng.RDS([]conceptrank.ConceptID{ids["F"], ids["I"]}, conceptrank.Options{K: 2})
	for _, r := range results {
		fmt.Printf("%s %.0f\n", coll.Doc(r.Doc).Name, r.Distance)
	}
	// Output:
	// note-2 2
	// note-3 2
}

// A similarity query: the query document itself scores 0.
func ExampleEngine_SDS() {
	o, ids := paperOntology()
	coll := conceptrank.NewCollection()
	coll.Add("rec-1", 0, []conceptrank.ConceptID{ids["F"], ids["R"]})
	coll.Add("rec-2", 0, []conceptrank.ConceptID{ids["U"], ids["K"]})
	eng := conceptrank.NewEngine(o, coll)

	results, _, _ := eng.SDS(coll.Doc(0).Concepts, conceptrank.Options{K: 2})
	for _, r := range results {
		fmt.Printf("%s %.1f\n", coll.Doc(r.Doc).Name, r.Distance)
	}
	// Output:
	// rec-1 0.0
	// rec-2 2.5
}

// The k most similar document pairs across the whole collection: a
// bounded all-pairs join that prunes candidates against the running
// k-th best pair instead of evaluating every pair.
func ExampleEngine_TopKPairs() {
	o, ids := paperOntology()
	coll := conceptrank.NewCollection()
	coll.Add("note-1", 0, []conceptrank.ConceptID{ids["I"], ids["T"]})
	coll.Add("note-2", 0, []conceptrank.ConceptID{ids["F"], ids["E"]})
	coll.Add("note-3", 0, []conceptrank.ConceptID{ids["G"], ids["J"]})
	coll.Add("note-4", 0, []conceptrank.ConceptID{ids["G"], ids["K"]})
	eng := conceptrank.NewEngine(o, coll)

	pairs, m, _ := eng.TopKPairs(context.Background(), conceptrank.PairOptions{K: 2})
	for _, p := range pairs {
		fmt.Printf("%s ~ %s %.1f\n", coll.Doc(p.A).Name, coll.Doc(p.B).Name, p.Distance)
	}
	fmt.Printf("examined %d of %d pairs\n", m.PairsExamined, m.TotalPairs)
	// Output:
	// note-3 ~ note-4 1.0
	// note-2 ~ note-3 2.0
	// examined 2 of 6 pairs
}

// A resumable cursor pages through a ranking and extends it with GrowK —
// results stay bitwise identical to a fresh query at the larger k.
func ExampleEngine_OpenRDS() {
	o, ids := paperOntology()
	coll := conceptrank.NewCollection()
	coll.Add("note-1", 0, []conceptrank.ConceptID{ids["I"], ids["T"]})
	coll.Add("note-2", 0, []conceptrank.ConceptID{ids["F"], ids["E"]})
	coll.Add("note-3", 0, []conceptrank.ConceptID{ids["G"], ids["J"]})
	eng := conceptrank.NewEngine(o, coll)

	cur, _ := eng.OpenRDS([]conceptrank.ConceptID{ids["F"], ids["I"]}, conceptrank.Options{K: 1})
	defer cur.Close()

	page, _ := cur.Next(context.Background(), 1)
	fmt.Printf("first: %s %.0f\n", coll.Doc(page[0].Doc).Name, page[0].Distance)

	grown, _ := cur.GrowK(context.Background(), 3)
	for _, r := range grown {
		fmt.Printf("grown: %s %.0f\n", coll.Doc(r.Doc).Name, r.Distance)
	}
	// Output:
	// first: note-2 2
	// grown: note-2 2
	// grown: note-3 2
	// grown: note-1 4
}

// Concept extraction from clinical text: abbreviations expand and negated
// mentions are dropped, as in the paper's corpus construction.
func ExampleAnnotator() {
	b := conceptrank.NewOntologyBuilder("clinical finding")
	dm := b.AddConcept("diabetes mellitus", "DM2")
	brady := b.AddConcept("bradycardia")
	b.MustAddEdge(b.Root(), dm)
	b.MustAddEdge(b.Root(), brady)
	o, _ := b.Finalize()

	ann := conceptrank.NewAnnotator(o)
	set := ann.ConceptSet("Follow up DM2 care. Absence of bradycardia.")
	for _, c := range set {
		fmt.Println(o.Name(c))
	}
	// Output: diabetes mellitus
}

// Ontology-based query expansion: the neighbors of F, nearest first.
func ExampleExpandQuery() {
	o, ids := paperOntology()
	for _, e := range conceptrank.ExpandQuery(o, []conceptrank.ConceptID{ids["F"]}, 1, 0) {
		fmt.Printf("%s dist=%d weight=%.2f\n", o.Name(e.Concept), e.Distance, e.Weight)
	}
	// Output:
	// D dist=1 weight=0.50
	// H dist=1 weight=0.50
	// J dist=1 weight=0.50
}
