module conceptrank

go 1.22
