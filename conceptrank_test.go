package conceptrank

import (
	"math"
	"path/filepath"
	"testing"
)

func smallSetup(t *testing.T) (*Ontology, *Collection) {
	t.Helper()
	o, err := GenerateOntology(OntologyConfig{NumConcepts: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := GenerateCorpus(o, CorpusProfile{
		Name: "T", NumDocs: 60, ConceptsPerDoc: 20, ConceptsStdDev: 5,
		TokensPerDoc: 100, Clustering: 0.5, DistinctTargets: 500, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o, coll
}

func TestEndToEndRDSAndSDS(t *testing.T) {
	o, coll := smallSetup(t)
	eng := NewEngine(o, coll)
	q := coll.Doc(0).Concepts[:3]

	results, m, err := eng.RDS(q, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 || m.ResultCount != 5 {
		t.Fatalf("RDS results: %v", results)
	}
	// Doc 0 contains all query concepts, so its distance is 0 and it must
	// rank first.
	if results[0].Doc != 0 || results[0].Distance != 0 {
		t.Fatalf("doc 0 should be the top RDS hit: %v", results)
	}

	sims, _, err := eng.SDS(coll.Doc(0).Concepts, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sims[0].Doc != 0 || sims[0].Distance != 0 {
		t.Fatalf("doc 0 should be most similar to itself: %v", sims)
	}

	// kNDS must agree with the exhaustive baseline.
	scan, _, err := eng.FullScanRDS(q, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if math.Abs(results[i].Distance-scan[i].Distance) > 1e-9 {
			t.Fatalf("kNDS %v vs full scan %v", results, scan)
		}
	}
}

func TestDistancesExposed(t *testing.T) {
	o, _ := smallSetup(t)
	a, b := ConceptID(10), ConceptID(20)
	d := ConceptDistance(o, a, b)
	if d <= 0 {
		t.Fatalf("ConceptDistance = %d", d)
	}
	if got := DocQueryDistance(o, []ConceptID{a}, []ConceptID{b}); got != float64(d) {
		t.Errorf("DocQueryDistance singleton = %v, want %d", got, d)
	}
	if got := DocDocDistance(o, []ConceptID{a}, []ConceptID{b}); got != float64(2*d) {
		t.Errorf("DocDocDistance singleton = %v, want %d", got, 2*d)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	o, coll := smallSetup(t)
	dir := t.TempDir()
	opath := filepath.Join(dir, OntologyFile)
	cpath := filepath.Join(dir, "corpus.crc")
	if err := SaveOntology(opath, o); err != nil {
		t.Fatal(err)
	}
	if err := SaveCollection(cpath, coll); err != nil {
		t.Fatal(err)
	}
	o2, err := LoadOntology(opath)
	if err != nil {
		t.Fatal(err)
	}
	coll2, err := LoadCollection(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if o2.NumConcepts() != o.NumConcepts() || coll2.NumDocs() != coll.NumDocs() {
		t.Fatal("round trip changed shapes")
	}
}

func TestDiskEngineMatchesMemory(t *testing.T) {
	o, coll := smallSetup(t)
	dir := t.TempDir()
	if err := SaveIndexes(dir, coll); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDiskEngine(o, dir, coll.NumDocs(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	mem := NewEngine(o, coll)
	q := coll.Doc(3).Concepts[:4]
	a, _, err := mem.RDS(q, Options{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, m, err := disk.RDS(q, Options{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("disk engine diverged: %v vs %v", a, b)
		}
	}
	if m.IOTime <= 0 {
		t.Error("disk engine reported no I/O time")
	}
}

func TestAnnotatorIntegration(t *testing.T) {
	o, _ := smallSetup(t)
	ann := NewAnnotator(o)
	name := o.Name(50)
	set := ann.ConceptSet("Patient presents with " + name + ".")
	if len(set) != 1 || set[0] != 50 {
		t.Fatalf("ConceptSet = %v, want [50] for %q", set, name)
	}
	if set := ann.ConceptSet("No evidence of " + name + "."); len(set) != 0 {
		t.Fatalf("negated mention indexed: %v", set)
	}
}

func TestFindConcept(t *testing.T) {
	o, _ := smallSetup(t)
	name := o.Name(123)
	id, ok := FindConcept(o, name)
	if !ok || id != 123 {
		t.Fatalf("FindConcept(%q) = %v, %v", name, id, ok)
	}
	if _, ok := FindConcept(o, "definitely not a term"); ok {
		t.Error("bogus term found")
	}
}

func TestHandBuiltOntology(t *testing.T) {
	b := NewOntologyBuilder("root")
	heart := b.AddConcept("heart disease")
	valve := b.AddConcept("heart valve finding")
	b.MustAddEdge(b.Root(), heart)
	b.MustAddEdge(heart, valve)
	o, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if ConceptDistance(o, heart, valve) != 1 {
		t.Error("hand-built distances wrong")
	}
}
