package conceptrank

import (
	"context"
	"net/http"

	"conceptrank/internal/cluster"
	"conceptrank/internal/shard"
)

// Distributed serving: the collection's shards run as standalone node
// processes and a coordinator fans queries out to them over a versioned
// HTTP+JSON RPC protocol, merging with the same canonical top-k merger the
// in-process ShardedEngine uses — so distributed results are bitwise
// identical to sharded and single-engine results. The coordinator carries
// the cross-shard cancellation bound on every cursor step, hedges
// stateless calls across replicas, sheds load per tenant, and can degrade
// to partial flagged results when nodes die. See DESIGN.md, "Distributed
// serving".

// ErrClusterOverloaded is returned when admission control sheds a query.
var ErrClusterOverloaded = cluster.ErrOverloaded

// ClusterRPCPrefix is the URL prefix of the versioned node RPC protocol;
// mount ClusterNode.Handler at "/" or route this subtree to it.
const ClusterRPCPrefix = cluster.PathPrefix

type (
	// ClusterNode is a shard node: a thin HTTP server around one engine
	// shard that plans queries, parks their cursors behind TTL'd tokens,
	// and executes bounded step segments on the coordinator's demand.
	ClusterNode = cluster.Node

	// ClusterNodeConfig configures a shard node.
	ClusterNodeConfig = cluster.NodeConfig

	// ClusterConfig configures a coordinator: peer URLs (one replica list
	// per shard), deadlines, retries, hedging, admission control.
	ClusterConfig = cluster.CoordinatorConfig

	// ClusterAdmissionConfig bounds what the coordinator accepts.
	ClusterAdmissionConfig = cluster.AdmissionConfig

	// Coordinator speaks the ShardedEngine query surface against remote
	// shard nodes.
	Coordinator = cluster.Coordinator

	// ClusterCursor is a resumable distributed query: Next pages and GrowK
	// extends the merged ranking, with every remote shard resuming from its
	// parked node-side cursor.
	ClusterCursor = cluster.Cursor
)

// NewClusterNode builds a shard node over its slice of the corpus. Mount
// Handler on an HTTP server and Close when done. The DocMap (from
// PartitionCollection) must be strictly increasing — the invariant that
// keeps distributed rankings bitwise identical to single-engine ones.
func NewClusterNode(cfg ClusterNodeConfig) (*ClusterNode, error) { return cluster.NewNode(cfg) }

// NewCoordinator connects to every peer, validates protocol versions, and
// returns a Coordinator. The context bounds only the initial probe.
func NewCoordinator(ctx context.Context, cfg ClusterConfig) (*Coordinator, error) {
	return cluster.NewCoordinator(ctx, cfg)
}

// PartitionCollection splits coll per cfg exactly as NewShardedEngine
// would: colls[s] is shard s's collection in local DocID space and
// maps[s][local] is the global DocID — ready to feed ClusterNodeConfig on
// N separate node processes.
func PartitionCollection(coll *Collection, cfg ShardConfig) (colls []*Collection, maps [][]DocID, err error) {
	return shard.Partition(coll, cfg)
}

// WithTenant tags ctx with the requesting tenant for the coordinator's
// per-tenant admission control.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return cluster.WithTenant(ctx, tenant)
}

// ClusterHealthHandler mounts /healthz (process liveness) and /readyz
// (readiness) onto mux, reporting ready while the ready func returns true
// (nil means always ready). Shared by nodes, coordinators, and crserve.
func ClusterHealthHandler(mux *http.ServeMux, ready func() bool) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil && !ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
}

// ClusterTelemetry wires a Telemetry sink into a ClusterConfig: queries
// record under "cluster_rds"/"cluster_sds" and the coordinator's RPC,
// hedge, shed, and degradation instruments land in the sink's registry.
func ClusterTelemetry(cfg *ClusterConfig, tel *Telemetry) {
	if tel == nil {
		return
	}
	cfg.Sink = tel
	cfg.Registry = tel.Registry
}

