package conceptrank

// Benchmarks regenerating each table and figure of the paper's evaluation
// (Section 6) as testing.B benchmarks. They run on a shared small-scale
// synthetic environment (see internal/bench for the full harness with
// medium/paper scales and markdown output via cmd/crbench).
//
//	Table 3          BenchmarkTable3CorpusStats
//	Ontology stats   BenchmarkOntologyStats
//	Figure 6         BenchmarkFig6DistanceCalc   (BL vs DRC per query size)
//	Figure 7         BenchmarkFig7ErrorThreshold (per ε_θ, RDS+SDS, both corpora)
//	Figure 8         BenchmarkFig8QuerySize      (kNDS vs baseline per nq)
//	Figure 9         BenchmarkFig9NumResults     (kNDS vs baseline per k)

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"conceptrank/internal/bench"
	"conceptrank/internal/core"
	"conceptrank/internal/distance"
	"conceptrank/internal/drc"
	"conceptrank/internal/emrgen"
	"conceptrank/internal/ontology"
)

var (
	benchOnce sync.Once
	benchEnv  *bench.Env
	benchErr  error
)

// benchScale is smaller than bench.SmallScale so `go test -bench=.`
// finishes quickly; cmd/crbench is the tool for larger runs.
func benchScale() bench.Scale {
	return bench.Scale{
		Name:             "bench",
		OntologyConcepts: 4000,
		Patient: emrgen.Profile{
			Name: "PATIENT", NumDocs: 60, ConceptsPerDoc: 80, ConceptsStdDev: 25,
			TokensPerDoc: 900, Clustering: 0.85, DistinctTargets: 1200, Seed: 101,
		},
		Radio: emrgen.Profile{
			Name: "RADIO", NumDocs: 400, ConceptsPerDoc: 18, ConceptsStdDev: 7,
			TokensPerDoc: 270, Clustering: 0.25, DistinctTargets: 800, Seed: 102,
		},
		DistPairs:   32,
		RankQueries: 8,
		DistSizes:   []int{2, 5, 10, 25},
	}
}

func getEnv(b *testing.B) *bench.Env {
	benchOnce.Do(func() { benchEnv, benchErr = bench.NewEnv(benchScale(), 1) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkTable3CorpusStats regenerates the corpus statistics table.
func BenchmarkTable3CorpusStats(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Patient.Coll.ComputeStats()
		_ = env.Radio.Coll.ComputeStats()
	}
}

// BenchmarkOntologyStats regenerates the Section 6.1 ontology statistics.
func BenchmarkOntologyStats(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.O.ComputeStats()
	}
}

// BenchmarkFig6DistanceCalc measures one document-document distance
// computation per iteration: the BL pairwise baseline vs DRC, per corpus
// and query size — the Figure 6 panels.
func BenchmarkFig6DistanceCalc(b *testing.B) {
	env := getEnv(b)
	for _, ds := range env.Datasets() {
		for _, nq := range env.Scale.DistSizes {
			r := rand.New(rand.NewSource(7))
			queryDocs := ds.SyntheticDocs(r, env.Scale.DistPairs, nq)
			partners := ds.RandomQueryDocs(r, env.Scale.DistPairs)
			b.Run(fmt.Sprintf("%s/nq=%d/BL", ds.Name, nq), func(b *testing.B) {
				bl := distance.NewBL(env.O, 0)
				for i := 0; i < b.N; i++ {
					j := i % len(queryDocs)
					_ = bl.DocDoc(partners[j], queryDocs[j])
				}
			})
			b.Run(fmt.Sprintf("%s/nq=%d/DRC", ds.Name, nq), func(b *testing.B) {
				calc := drc.NewCalculator(env.O, 0)
				for i := 0; i < b.N; i++ {
					j := i % len(queryDocs)
					_ = calc.DocDoc(partners[j], queryDocs[j])
				}
			})
		}
	}
}

// BenchmarkFig7ErrorThreshold measures one kNDS query per iteration across
// the ε_θ sweep — the Figure 7 panels (RDS on both corpora, SDS on both).
func BenchmarkFig7ErrorThreshold(b *testing.B) {
	env := getEnv(b)
	for _, ds := range env.Datasets() {
		for _, sds := range []bool{false, true} {
			kind := "RDS"
			if sds {
				kind = "SDS"
			}
			r := rand.New(rand.NewSource(13))
			var queries [][]ontology.ConceptID
			if sds {
				queries = ds.RandomQueryDocs(r, env.Scale.RankQueries)
			} else {
				queries = ds.RandomQueries(r, env.Scale.RankQueries, bench.DefaultNq)
			}
			for _, eps := range bench.ErrorThresholds {
				b.Run(fmt.Sprintf("%s/%s/eps=%.2f", kind, ds.Name, eps), func(b *testing.B) {
					opts := core.Options{K: bench.DefaultK, ErrorThreshold: eps}
					for i := 0; i < b.N; i++ {
						q := queries[i%len(queries)]
						var err error
						if sds {
							_, _, err = ds.Engine.SDS(q, opts)
						} else {
							_, _, err = ds.Engine.RDS(q, opts)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig8QuerySize measures RDS query time against query size for
// kNDS and the full-scan baseline — the Figure 8 panels.
func BenchmarkFig8QuerySize(b *testing.B) {
	env := getEnv(b)
	for _, ds := range env.Datasets() {
		for _, nq := range bench.QuerySizes {
			r := rand.New(rand.NewSource(17))
			queries := ds.RandomQueries(r, env.Scale.RankQueries, nq)
			b.Run(fmt.Sprintf("%s/nq=%d/kNDS", ds.Name, nq), func(b *testing.B) {
				opts := core.Options{K: bench.DefaultK, ErrorThreshold: ds.DefaultEps}
				for i := 0; i < b.N; i++ {
					if _, _, err := ds.Engine.RDS(queries[i%len(queries)], opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/nq=%d/baseline", ds.Name, nq), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := ds.Engine.FullScanRDS(queries[i%len(queries)], core.Options{K: bench.DefaultK}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9NumResults measures query time against k for both query
// types, kNDS vs the (k-independent) baseline — the Figure 9 panels.
func BenchmarkFig9NumResults(b *testing.B) {
	env := getEnv(b)
	for _, ds := range env.Datasets() {
		for _, sds := range []bool{false, true} {
			kind := "RDS"
			if sds {
				kind = "SDS"
			}
			r := rand.New(rand.NewSource(19))
			var queries [][]ontology.ConceptID
			if sds {
				queries = ds.RandomQueryDocs(r, env.Scale.RankQueries)
			} else {
				queries = ds.RandomQueries(r, env.Scale.RankQueries, bench.DefaultNq)
			}
			for _, k := range bench.Ks {
				b.Run(fmt.Sprintf("%s/%s/k=%d/kNDS", kind, ds.Name, k), func(b *testing.B) {
					opts := core.Options{K: k, ErrorThreshold: ds.DefaultEps}
					for i := 0; i < b.N; i++ {
						q := queries[i%len(queries)]
						var err error
						if sds {
							_, _, err = ds.Engine.SDS(q, opts)
						} else {
							_, _, err = ds.Engine.RDS(q, opts)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			b.Run(fmt.Sprintf("%s/%s/baseline", kind, ds.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					var err error
					if sds {
						_, _, err = ds.Engine.FullScanSDS(q, core.Options{K: bench.DefaultK})
					} else {
						_, _, err = ds.Engine.FullScanRDS(q, core.Options{K: bench.DefaultK})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
