package conceptrank

// Alternative semantic similarity measures (the paper's Section 2 survey
// and Section 7 future work) and ontology-based query expansion (related
// work: Lu et al., Matos et al.; distance merging per footnote 3 of the
// paper). These pair with full-scan ranking — kNDS's bounds are specific
// to the additive shortest-path distance the paper adopts.

import (
	"conceptrank/internal/drc"
	"conceptrank/internal/expand"
	"conceptrank/internal/ir"
	"conceptrank/internal/metrics"
)

// ICTable holds corpus-derived information content per concept, the basis
// of the Resnik/Lin/Jiang-Conrath measures.
type ICTable = metrics.ICTable

// ComputeIC derives information content from a collection's concept
// frequencies (descendant-aggregated, DAG-exact).
func ComputeIC(o *Ontology, coll *Collection) *ICTable { return metrics.ComputeIC(o, coll) }

// LCS returns the Least Common Subsumer (deepest common ancestor) of two
// concepts.
func LCS(o *Ontology, a, b ConceptID) (ConceptID, bool) { return metrics.LCS(o, a, b) }

// WuPalmer returns the Wu-Palmer similarity in (0, 1].
func WuPalmer(o *Ontology, a, b ConceptID) float64 { return metrics.WuPalmer(o, a, b) }

// LeacockChodorow returns the Leacock-Chodorow similarity (higher = more
// similar).
func LeacockChodorow(o *Ontology, a, b ConceptID) float64 {
	return metrics.LeacockChodorow(o, a, b)
}

// BestMatchAverage aggregates any concept similarity to document level
// (Pesquita et al.'s best-match average).
func BestMatchAverage(d1, d2 []ConceptID, sim func(a, b ConceptID) float64) float64 {
	return metrics.BestMatchAverage(d1, d2, metrics.Similarity(sim))
}

// Expansion is one query-expansion suggestion.
type Expansion = expand.Expansion

// ExpandQuery suggests concepts within radius of each seed concept,
// nearest first, at most maxPerSeed per seed (0 = unlimited).
func ExpandQuery(o *Ontology, seeds []ConceptID, radius, maxPerSeed int) []Expansion {
	return expand.Expand(o, seeds, radius, maxPerSeed)
}

// MergedResult is one entry of a multi-query merged ranking.
type MergedResult = expand.Result

// MergedRDS ranks the engine's collection against several queries at once,
// scoring each document with the normalized sum of per-query distances
// (footnote 3 of the paper). It scans the whole collection.
func (e *Engine) MergedRDS(queries [][]ConceptID, k int) ([]MergedResult, error) {
	return expand.MergedRDS(e.o, e.fwd, e.numDocs(), queries, k)
}

// Text + concept hybrid retrieval (the paper's Section 7 future work:
// "combine our methods with IR ranking").

// TextIndex is a BM25 text index over document bodies.
type TextIndex = ir.Index

// BuildTextIndex indexes document texts; slice position is the DocID.
func BuildTextIndex(texts []string) *TextIndex { return ir.BuildIndex(texts) }

// HybridResult is one blended text+concept ranking entry.
type HybridResult = ir.Result

// HybridRDS blends concept-based relevance with BM25 text relevance:
// alpha = 1 is pure semantic ranking, alpha = 0 pure BM25. The semantic
// side scans the collection (exact distances for every document,
// partitioned across GOMAXPROCS workers), so this is an offline/analytics
// path rather than the kNDS fast path.
func (e *Engine) HybridRDS(query []ConceptID, textQuery string, tix *TextIndex, alpha float64, k int) ([]HybridResult, error) {
	scan, _, err := e.inner.FullScanRDSParallel(query, e.numDocs(), 0)
	if err != nil {
		return nil, err
	}
	sem := make(map[DocID]float64, len(scan))
	for _, r := range scan {
		sem[r.Doc] = r.Distance
	}
	return ir.Hybrid(sem, tix.Scores(textQuery), alpha, k), nil
}

// Weighted document distances (Melton et al.'s general weighted form; the
// paper evaluates the equal-weight special case). A natural weight choice
// is information content: w = ic.IC.

// WeightFunc assigns a non-negative weight to a concept.
type WeightFunc = drc.WeightFunc

// DocDocDistanceWeighted computes the weighted symmetric document distance
// with per-concept weights; w ≡ 1 reduces to DocDocDistance.
func DocDocDistanceWeighted(o *Ontology, d1, d2 []ConceptID, w WeightFunc) (float64, error) {
	return drc.NewCalculator(o, 0).DocDocWeighted(d1, d2, w)
}

// DocQueryDistanceWeighted computes the weighted, weight-normalized
// document-query distance.
func DocQueryDistanceWeighted(o *Ontology, d, q []ConceptID, w WeightFunc) (float64, error) {
	return drc.NewCalculator(o, 0).DocQueryWeighted(d, q, w)
}
