package conceptrank

// Alternative semantic similarity measures (the paper's Section 2 survey
// and Section 7 future work) and ontology-based query expansion (related
// work: Lu et al., Matos et al.; distance merging per footnote 3 of the
// paper). The pluggable DistanceMeasure framework (see the package
// comment) covers measures that conform to the kNDS lower-bound contract;
// the similarity functions here (Wu-Palmer, Leacock-Chodorow, IC-based)
// do not, so they pair with full-scan ranking instead.

import (
	"context"
	"runtime"

	"conceptrank/internal/core"
	"conceptrank/internal/drc"
	"conceptrank/internal/expand"
	"conceptrank/internal/ir"
	"conceptrank/internal/metrics"
)

// ICTable holds corpus-derived information content per concept, the basis
// of the Resnik/Lin/Jiang-Conrath measures.
type ICTable = metrics.ICTable

// ComputeIC derives information content from a collection's concept
// frequencies (descendant-aggregated, DAG-exact).
func ComputeIC(o *Ontology, coll *Collection) *ICTable { return metrics.ComputeIC(o, coll) }

// LCS returns the Least Common Subsumer (deepest common ancestor) of two
// concepts.
func LCS(o *Ontology, a, b ConceptID) (ConceptID, bool) { return metrics.LCS(o, a, b) }

// WuPalmer returns the Wu-Palmer similarity in (0, 1].
func WuPalmer(o *Ontology, a, b ConceptID) float64 { return metrics.WuPalmer(o, a, b) }

// LeacockChodorow returns the Leacock-Chodorow similarity (higher = more
// similar).
func LeacockChodorow(o *Ontology, a, b ConceptID) float64 {
	return metrics.LeacockChodorow(o, a, b)
}

// BestMatchAverage aggregates any concept similarity to document level
// (Pesquita et al.'s best-match average).
func BestMatchAverage(d1, d2 []ConceptID, sim func(a, b ConceptID) float64) float64 {
	return metrics.BestMatchAverage(d1, d2, metrics.Similarity(sim))
}

// Expansion is one query-expansion suggestion.
type Expansion = expand.Expansion

// ExpandQuery suggests concepts within radius of each seed concept,
// nearest first, at most maxPerSeed per seed (0 = unlimited).
func ExpandQuery(o *Ontology, seeds []ConceptID, radius, maxPerSeed int) []Expansion {
	return expand.Expand(o, seeds, radius, maxPerSeed)
}

// MergedResult is one entry of a multi-query merged ranking.
type MergedResult = expand.Result

// MergedRDS ranks the engine's collection against several queries at once,
// scoring each document with the normalized sum of per-query distances
// (footnote 3 of the paper). It scans the whole collection, folding the
// ranking out of per-concept distance columns — served from the engine's
// cache when one is installed with EnableCache (or passed with WithCache).
// WithK selects the result count (default 10), WithMeasure the distance
// measure, WithTrace a span hook; traversal knobs are ignored. Cancelling
// ctx stops the scan within a few thousand documents.
func (e *Engine) MergedRDS(ctx context.Context, queries [][]ConceptID, opts ...Option) ([]MergedResult, *Metrics, error) {
	o := e.withCache(core.NewOptions(opts...))
	done := e.instrument("merged", &o)
	res, m, err := e.inner.MergedRDS(ctx, queries, o)
	if done != nil {
		done(m, err)
	}
	out := make([]MergedResult, len(res))
	for i, r := range res {
		out[i] = MergedResult{Doc: r.Doc, Score: r.Score}
	}
	return out, m, err
}

// Text + concept hybrid retrieval (the paper's Section 7 future work:
// "combine our methods with IR ranking").

// TextIndex is a BM25 text index over document bodies.
type TextIndex = ir.Index

// BuildTextIndex indexes document texts; slice position is the DocID.
func BuildTextIndex(texts []string) *TextIndex { return ir.BuildIndex(texts) }

// HybridResult is one blended text+concept ranking entry.
type HybridResult = ir.Result

// HybridOption configures a HybridRDS query.
type HybridOption func(*hybridOpts)

type hybridOpts struct {
	alpha float64
	k     int
	tix   *TextIndex
	meas  DistanceMeasure
}

// WithFusionWeight sets the blend weight alpha in [0, 1]: 1 is pure
// semantic ranking, 0 pure BM25. The default is 0.5.
func WithFusionWeight(alpha float64) HybridOption {
	return func(h *hybridOpts) { h.alpha = alpha }
}

// WithTextIndex supplies the BM25 side of the blend. Without one,
// HybridRDS degrades to a pure semantic ranking (every document's BM25
// signal is zero).
func WithTextIndex(tix *TextIndex) HybridOption {
	return func(h *hybridOpts) { h.tix = tix }
}

// WithHybridK sets the number of results (default 10).
func WithHybridK(k int) HybridOption {
	return func(h *hybridOpts) { h.k = k }
}

// WithHybridMeasure selects the semantic distance measure of the blend's
// concept side; nil (the default) is the Rada distance.
func WithHybridMeasure(m DistanceMeasure) HybridOption {
	return func(h *hybridOpts) { h.meas = m }
}

// HybridRDS blends concept-based relevance with BM25 text relevance:
//
//	res, m, err := eng.HybridRDS(ctx, query, "chest pain",
//	        conceptrank.WithTextIndex(tix),
//	        conceptrank.WithFusionWeight(0.7),
//	        conceptrank.WithHybridK(20))
//
// Both signals are normalized per query and blended with the fusion
// weight (see internal/ir). The semantic side scans the collection —
// exact distances for every document, partitioned across GOMAXPROCS
// workers and served from the engine cache when one is installed — so
// this is an offline/analytics path rather than the kNDS fast path. The
// returned Metrics describe the semantic scan. Cancelling ctx stops the
// scan within a few thousand documents.
func (e *Engine) HybridRDS(ctx context.Context, query []ConceptID, textQuery string, opts ...HybridOption) ([]HybridResult, *Metrics, error) {
	h := hybridOpts{alpha: 0.5, k: 10}
	for _, fn := range opts {
		fn(&h)
	}
	o := e.withCache(core.Options{
		K:       e.numDocs(),
		Workers: runtime.GOMAXPROCS(0),
		Measure: h.meas,
	})
	done := e.instrument("hybrid", &o)
	scan, m, err := e.inner.FullScanRDSContext(ctx, query, o)
	if done != nil {
		done(m, err)
	}
	if err != nil {
		return nil, m, err
	}
	sem := make(map[DocID]float64, len(scan))
	for _, r := range scan {
		sem[r.Doc] = r.Distance
	}
	var bm25 map[DocID]float64
	if h.tix != nil {
		bm25 = h.tix.Scores(textQuery)
	}
	return ir.Hybrid(sem, bm25, h.alpha, h.k), m, nil
}

// Weighted document distances (Melton et al.'s general weighted form; the
// paper evaluates the equal-weight special case). A natural weight choice
// is information content: w = ic.IC.

// WeightFunc assigns a non-negative weight to a concept.
type WeightFunc = drc.WeightFunc

// DocDocDistanceWeighted computes the weighted symmetric document distance
// with per-concept weights; w ≡ 1 reduces to DocDocDistance. Like every
// distance helper of this package it returns a bare value: inputs whose
// D-Radix cannot be built yield the float64(MaxInt32) sentinel (see the
// package comment, "Distance helpers").
func DocDocDistanceWeighted(o *Ontology, d1, d2 []ConceptID, w WeightFunc) float64 {
	d, err := drc.NewCalculator(o, 0).DocDocWeighted(d1, d2, w)
	if err != nil {
		return float64(drc.Inf)
	}
	return d
}

// DocQueryDistanceWeighted computes the weighted, weight-normalized
// document-query distance; same conventions as DocDocDistanceWeighted.
func DocQueryDistanceWeighted(o *Ontology, d, q []ConceptID, w WeightFunc) float64 {
	v, err := drc.NewCalculator(o, 0).DocQueryWeighted(d, q, w)
	if err != nil {
		return float64(drc.Inf)
	}
	return v
}
