# Development targets; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: build test test-race vet bench bench-shard bench-trace experiments serve-demo

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-bearing packages: the parallel kNDS engine
# and its serial-equivalence suite, the sharded fan-out engine, the worker
# pool primitives, the shared address cache, and the telemetry registry.
test-race:
	$(GO) test -race -count=2 ./internal/core/... ./internal/drc/... ./internal/pool/... ./internal/shard/... ./internal/telemetry/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Sharded fan-out latency sweep (shard counts x placements), with every
# answer verified against the single engine.
bench-shard:
	$(GO) run ./cmd/crbench -scale small -exp shard

# Tracing cost at its three operating points (off / hook / full sink),
# plus the BenchmarkTrace micro-benchmark CI smokes.
bench-trace:
	$(GO) run ./cmd/crbench -scale small -exp telemetry
	$(GO) test -run=NONE -bench=BenchmarkTrace -benchtime=100x ./internal/core/

# Regenerate the EXPERIMENTS.md tables at laptop scale.
experiments:
	$(GO) run ./cmd/crbench -scale small -exp all

# Introspection demo: a synthetic-corpus query server with background demo
# traffic; watch `curl localhost:6060/metrics` move, browse /debug/slowlog
# and /debug/pprof.
serve-demo:
	$(GO) run ./cmd/crserve -listen :6060 -demo 50ms
