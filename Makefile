# Development targets; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: build test test-race vet bench bench-shard experiments

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-bearing packages: the parallel kNDS engine
# and its serial-equivalence suite, the sharded fan-out engine, the worker
# pool primitives, and the shared address cache.
test-race:
	$(GO) test -race -count=2 ./internal/core/... ./internal/drc/... ./internal/pool/... ./internal/shard/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Sharded fan-out latency sweep (shard counts x placements), with every
# answer verified against the single engine.
bench-shard:
	$(GO) run ./cmd/crbench -scale small -exp shard

# Regenerate the EXPERIMENTS.md tables at laptop scale.
experiments:
	$(GO) run ./cmd/crbench -scale small -exp all
