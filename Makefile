# Development targets; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: build test test-race vet lint bench bench-shard bench-trace bench-cursor bench-cache bench-pairs bench-measures bench-memstats bench-cluster experiments serve-demo serve-cluster api-check api-snapshot

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: vet always; staticcheck when it is on PATH (CI installs
# it, local machines may not have it — we never install on the fly).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

# Race-detect the concurrency-bearing packages: the parallel kNDS engine
# and its serial-equivalence suite, the sharded fan-out engine, the
# distributed serving tier (loopback node fleets + coordinator), the worker
# pool primitives, the shared address cache, the semantic-distance cache,
# and the telemetry registry.
test-race:
	$(GO) test -race -count=2 ./internal/cache/... ./internal/cluster/... ./internal/core/... ./internal/drc/... ./internal/pool/... ./internal/shard/... ./internal/telemetry/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Sharded fan-out latency sweep (shard counts x placements), with every
# answer verified against the single engine.
bench-shard:
	$(GO) run ./cmd/crbench -scale small -exp shard

# Tracing cost at its three operating points (off / hook / full sink),
# plus the BenchmarkTrace micro-benchmark CI smokes.
bench-trace:
	$(GO) run ./cmd/crbench -scale small -exp telemetry
	$(GO) test -run=NONE -bench=BenchmarkTrace -benchtime=100x ./internal/core/

# Cursor resume cost: one-shot pipeline latency plus GrowK-resume vs a
# fresh requery at the larger k (EXPERIMENTS.md, "Cursor resume").
bench-cursor:
	$(GO) run ./cmd/crbench -scale small -exp cursor

# Distance-cache sweep: Zipf workload, byte-budget sweep with hit rate and
# plan-stage speedup, plus the corpus-growth invalidation phase
# (EXPERIMENTS.md, "Distance cache").
bench-cache:
	$(GO) run ./cmd/crbench -scale small -exp cache

# Bounded all-pairs join vs the naive oracle: evaluated fraction, pruning
# counts, and bitwise equivalence of all tiers (EXPERIMENTS.md, "Top-k
# similar pairs").
bench-pairs:
	$(GO) run ./cmd/crbench -scale small -exp pairs
	$(GO) test -run=NONE -bench=BenchmarkTopKPairs -benchtime=10x ./internal/core/

# Resource attribution: allocations/query, objects/query and GC pause per
# execution tier (serial/parallel/sharded x cold/warm cache), plus the
# per-stage allocation table via the StageAllocs sampler (EXPERIMENTS.md,
# "Resource attribution").
bench-memstats:
	$(GO) run ./cmd/crbench -scale small -exp memstats

# Pluggable-measure sweep: overlap@k against the Rada default and per-query
# cost for each built-in DistanceMeasure, with the generic-pipeline Rada
# tier as the pluggability-overhead control (EXPERIMENTS.md, "Pluggable
# distance measures").
bench-measures:
	$(GO) run ./cmd/crbench -scale small -exp measures

# Distributed serving tier: single-vs-sharded-vs-distributed latency with
# bitwise verification, hedge win rate against a slowed replica, and shed
# rate under a concurrent burst (EXPERIMENTS.md, "Distributed serving").
bench-cluster:
	$(GO) run ./cmd/crbench -scale small -exp cluster

# Public API surface gate. api/conceptrank.txt is the checked-in `go doc`
# snapshot of the root package; api-check fails when the exported surface
# (or its package doc) drifts without the snapshot being regenerated, so
# API changes are always explicit in review. After an intentional change,
# run api-snapshot and commit the diff.
api-check:
	@$(GO) doc ./ | diff -u api/conceptrank.txt - \
		|| { echo "public API surface drifted from api/conceptrank.txt; run 'make api-snapshot' and commit the result"; exit 1; }

api-snapshot:
	$(GO) doc ./ > api/conceptrank.txt

# Regenerate the EXPERIMENTS.md tables at laptop scale.
experiments:
	$(GO) run ./cmd/crbench -scale small -exp all

# Introspection demo: a synthetic-corpus query server with background demo
# traffic; watch `curl localhost:6060/metrics` move, browse /debug/slowlog
# and /debug/pprof.
serve-demo:
	$(GO) run ./cmd/crserve -listen :6060 -demo 50ms

# Distributed demo on one machine: three shard nodes plus a coordinator on
# :6060 speaking the same /search surface as serve-demo. Ctrl-C stops all
# four (each drains gracefully).
serve-cluster:
	$(GO) run ./cmd/crserve -node -shard-index 0 -shard-count 3 -listen :7001 & \
	$(GO) run ./cmd/crserve -node -shard-index 1 -shard-count 3 -listen :7002 & \
	$(GO) run ./cmd/crserve -node -shard-index 2 -shard-count 3 -listen :7003 & \
	sleep 2; \
	$(GO) run ./cmd/crserve -coordinator -peers 'http://localhost:7001;http://localhost:7002;http://localhost:7003' -listen :6060; \
	kill %1 %2 %3 2>/dev/null; wait
