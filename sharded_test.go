package conceptrank

import (
	"context"
	"errors"
	"testing"
)

// TestShardedEngineFacade: public sharded engines must answer exactly like
// the single public Engine, for several shard counts and both placements,
// in memory and from the sharded disk layout.
func TestShardedEngineFacade(t *testing.T) {
	o, coll := smallSetup(t)
	eng := NewEngine(o, coll)
	q := coll.Doc(0).Concepts[:3]
	opts := Options{K: 5, ErrorThreshold: 0.5}
	want, _, err := eng.RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []ShardConfig{
		{Shards: 1},
		{Shards: 3, Placement: RoundRobinPlacement},
		{Shards: 4, Placement: SizeBalancedPlacement},
	} {
		se, err := NewShardedEngine(o, coll, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, sm, err := se.RDS(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: %v vs %v", cfg, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: sharded result %d = %v, single engine %v", cfg, i, got[i], want[i])
			}
		}
		if se.NumShards() != cfg.Shards || se.NumDocs() != coll.NumDocs() {
			t.Fatalf("%+v: NumShards=%d NumDocs=%d", cfg, se.NumShards(), se.NumDocs())
		}
		if len(sm.PerShard) != cfg.Shards {
			t.Fatalf("%+v: PerShard has %d entries", cfg, len(sm.PerShard))
		}
	}

	// Disk round trip through the public API.
	dir := t.TempDir()
	cfg := ShardConfig{Shards: 3, Placement: SizeBalancedPlacement}
	if err := SaveShardedIndexes(dir, coll, cfg); err != nil {
		t.Fatal(err)
	}
	de, err := OpenShardedDiskEngine(o, dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer de.Close()
	got, _, err := de.RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("disk sharded result %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Context cancellation through the facade.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	se, err := NewShardedEngine(o, coll, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := se.RDSContext(ctx, q, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sharded query: %v", err)
	}
	if _, _, err := eng.RDSContext(ctx, q, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled single query: %v", err)
	}
}

func TestDynamicShardedEngineFacade(t *testing.T) {
	o, coll := smallSetup(t)
	de, err := NewDynamicShardedEngine(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range coll.Docs() {
		if id := de.AddDocument(d.Name, d.Concepts); int(id) != i {
			t.Fatalf("AddDocument -> %d, want %d", id, i)
		}
	}
	q := coll.Doc(1).Concepts[:2]
	opts := Options{K: 6}
	want, _, err := NewEngine(o, coll).RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := de.RDS(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%v vs %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dynamic sharded result %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFunctionalOptions: the options layer must compose into the same
// Options struct values and drive the collapsed FullScan entry points.
func TestFunctionalOptions(t *testing.T) {
	o := NewOptions(WithK(7), WithEpsilon(0.25), WithWorkers(3), WithQueueLimit(99))
	if o.K != 7 || o.ErrorThreshold != 0.25 || o.Workers != 3 || o.QueueLimit != 99 {
		t.Fatalf("NewOptions built %+v", o)
	}
	refined := o.With(WithK(2))
	if refined.K != 2 || refined.Workers != 3 || o.K != 7 {
		t.Fatalf("With must copy: %+v / %+v", refined, o)
	}

	ont, coll := smallSetup(t)
	eng := NewEngine(ont, coll)
	q := coll.Doc(2).Concepts[:3]

	serial, _, err := eng.FullScanRDS(q, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 5 {
		t.Fatalf("WithK(5) returned %d results", len(serial))
	}
	parallel, _, err := eng.FullScanRDS(q, WithK(5), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("full-scan variants disagree at %d: %v / %v",
				i, serial[i], parallel[i])
		}
	}
	sdsSerial, _, err := eng.FullScanSDS(q, WithK(4))
	if err != nil {
		t.Fatal(err)
	}
	sdsParallel, _, err := eng.FullScanSDS(q, WithK(4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sdsSerial {
		if sdsSerial[i] != sdsParallel[i] {
			t.Fatalf("SDS full-scan variants disagree: %v vs %v", sdsSerial, sdsParallel)
		}
	}
	if _, _, err := eng.FullScanRDS(q, WithWorkers(-2)); err == nil {
		t.Fatal("negative workers must be rejected")
	}
}

func TestFindConcepts(t *testing.T) {
	b := NewOntologyBuilder("root")
	heart := b.AddConcept("heart disease", "HD", "cardiac disease")
	valve := b.AddConcept("valve finding", "HD") // duplicate synonym: lower ID wins
	b.MustAddEdge(b.Root(), heart)
	b.MustAddEdge(heart, valve)
	o, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	ids, found := FindConcepts(o, []string{"valve finding", "cardiac disease", "HD", "nope"})
	if !found[0] || ids[0] != valve {
		t.Fatalf("valve finding -> %v %v", ids[0], found[0])
	}
	if !found[1] || ids[1] != heart {
		t.Fatalf("cardiac disease -> %v %v", ids[1], found[1])
	}
	if !found[2] || ids[2] != heart {
		t.Fatalf("ambiguous synonym must resolve to the lowest concept: %v", ids[2])
	}
	if found[3] {
		t.Fatal("unknown term reported found")
	}
	// Spot-check agreement with a linear scan over a generated ontology.
	g, _ := smallSetup(t)
	for c := 0; c < 50; c++ {
		name := g.Name(ConceptID(c))
		wantID, wantOK := scanFindConcept(g, name)
		gotID, gotOK := FindConcept(g, name)
		if wantOK != gotOK || wantID != gotID {
			t.Fatalf("FindConcept(%q) = %v,%v; scan says %v,%v", name, gotID, gotOK, wantID, wantOK)
		}
	}
}

// scanFindConcept is the pre-index linear scan, kept as the semantic
// reference for FindConcept's precedence rules.
func scanFindConcept(o *Ontology, term string) (ConceptID, bool) {
	for c := 0; c < o.NumConcepts(); c++ {
		id := ConceptID(c)
		if o.Name(id) == term {
			return id, true
		}
		for _, s := range o.Synonyms(id) {
			if s == term {
				return id, true
			}
		}
	}
	return 0, false
}
