// Quickstart: build the running-example ontology of the paper (Figure 3)
// by hand, index a handful of documents, and run both query types. It also
// reproduces the paper's Example 1 distances so you can check the library
// against the publication directly.
package main

import (
	"fmt"
	"log"

	"conceptrank"
)

func main() {
	// Figure 3 of the paper: a 22-concept is-a DAG (J has two parents).
	b := conceptrank.NewOntologyBuilder("A")
	ids := map[string]conceptrank.ConceptID{"A": b.Root()}
	for _, letter := range []string{
		"B", "C", "D", "E", "F", "G", "H", "I", "J", "K",
		"L", "M", "N", "O", "P", "Q", "R", "S", "T", "U", "V",
	} {
		ids[letter] = b.AddConcept(letter)
	}
	for _, e := range [][2]string{
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "E"}, {"E", "G"},
		{"G", "I"}, {"G", "J"}, {"D", "F"}, {"F", "J"}, {"F", "H"},
		{"I", "M"}, {"I", "N"}, {"J", "K"}, {"J", "O"}, {"K", "R"},
		{"R", "U"}, {"O", "S"}, {"S", "V"}, {"H", "P"}, {"H", "L"},
		{"P", "Q"}, {"Q", "T"},
	} {
		b.MustAddEdge(ids[e[0]], ids[e[1]])
	}
	o, err := b.Finalize()
	if err != nil {
		log.Fatal(err)
	}

	cs := func(letters ...string) []conceptrank.ConceptID {
		out := make([]conceptrank.ConceptID, len(letters))
		for i, l := range letters {
			out[i] = ids[l]
		}
		return out
	}

	// Example 1 of the paper: d = {F,R,T,V}, q = {I,L,U} has Ddq = 7.
	d := cs("F", "R", "T", "V")
	q := cs("I", "L", "U")
	fmt.Printf("D(G,F) = %d (paper: 5, the valid path must pass a common ancestor)\n",
		conceptrank.ConceptDistance(o, ids["G"], ids["F"]))
	fmt.Printf("Ddq(d,q) = %.0f (paper Example 1: 4+2+1 = 7)\n", conceptrank.DocQueryDistance(o, d, q))
	fmt.Printf("Ddd(d,q) = %.4f\n\n", conceptrank.DocDocDistance(o, d, q))

	// Index a small collection and search it.
	coll := conceptrank.NewCollection()
	coll.Add("note-1", 40, cs("I", "T"))
	coll.Add("note-2", 35, cs("F", "E"))
	coll.Add("note-3", 25, cs("G", "J"))
	coll.Add("note-4", 10, cs("K"))
	coll.Add("note-5", 15, cs("C"))
	coll.Add("note-6", 30, cs("E", "M"))
	eng := conceptrank.NewEngine(o, coll)

	fmt.Println("RDS: top-2 documents for query {F, I}:")
	results, metrics, err := eng.RDS(cs("F", "I"), conceptrank.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("  %d. %s  distance %.0f\n", i+1, coll.Doc(r.Doc).Name, r.Distance)
	}
	fmt.Printf("  (examined %d of %d documents before terminating)\n\n",
		metrics.DocsExamined, coll.NumDocs())

	fmt.Println("SDS: top-3 documents similar to {F, R, T, V}:")
	sims, _, err := eng.SDS(d, conceptrank.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range sims {
		fmt.Printf("  %d. %s  distance %.4f\n", i+1, coll.Doc(r.Doc).Name, r.Distance)
	}
}
