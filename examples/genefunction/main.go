// Gene-function similarity (the paper's Section 1 pointer to Lord et al.):
// genes annotated with Gene Ontology terms can be compared by the semantic
// similarity of their annotation sets rather than sequence similarity. A
// gene is then just a "document" whose concepts are GO terms, and SDS over
// the gene corpus predicts functional relatives.
//
// The example builds a small GO-like DAG, annotates a handful of genes,
// prints the pairwise distance matrix, and uses SDS to find the functional
// neighbors of one gene.
package main

import (
	"fmt"
	"log"

	"conceptrank"
)

func main() {
	// A miniature molecular-function ontology (DAG: "kinase activity" has
	// two parents, mirroring GO's multiple inheritance).
	b := conceptrank.NewOntologyBuilder("molecular function")
	add := func(name string, parents ...conceptrank.ConceptID) conceptrank.ConceptID {
		id := b.AddConcept(name)
		for _, p := range parents {
			b.MustAddEdge(p, id)
		}
		return id
	}
	catalytic := add("catalytic activity", b.Root())
	binding := add("binding", b.Root())
	transferase := add("transferase activity", catalytic)
	hydrolase := add("hydrolase activity", catalytic)
	nucleotideBind := add("nucleotide binding", binding)
	atpBind := add("ATP binding", nucleotideBind)
	proteinBind := add("protein binding", binding)
	kinase := add("kinase activity", transferase, nucleotideBind) // two parents
	protKinase := add("protein kinase activity", kinase)
	tyrKinase := add("tyrosine kinase activity", protKinase)
	serKinase := add("serine threonine kinase activity", protKinase)
	peptidase := add("peptidase activity", hydrolase)
	metallopept := add("metallopeptidase activity", peptidase)
	dnaBind := add("DNA binding", binding)
	tfBind := add("transcription factor binding", proteinBind)
	o, err := b.Finalize()
	if err != nil {
		log.Fatal(err)
	}

	genes := conceptrank.NewCollection()
	annot := map[string][]conceptrank.ConceptID{
		"EGFR": {tyrKinase, atpBind, proteinBind},
		"SRC":  {tyrKinase, atpBind},
		"AKT1": {serKinase, atpBind, proteinBind},
		"MMP9": {metallopept},
		"MMP2": {metallopept, proteinBind},
		"TP53": {dnaBind, tfBind, proteinBind},
		"MYC":  {dnaBind, tfBind},
		"CDK2": {serKinase, atpBind},
	}
	order := []string{"EGFR", "SRC", "AKT1", "CDK2", "MMP9", "MMP2", "TP53", "MYC"}
	nameOf := map[conceptrank.DocID]string{}
	for _, g := range order {
		id := genes.Add(g, 0, annot[g])
		nameOf[id] = g
	}

	fmt.Println("pairwise semantic distance matrix (Melton/Lord-style, lower = more similar):")
	fmt.Printf("%8s", "")
	for _, g := range order {
		fmt.Printf("%7s", g)
	}
	fmt.Println()
	for i, gi := range order {
		fmt.Printf("%8s", gi)
		for j := range order {
			d := conceptrank.DocDocDistance(o, annot[gi], annot[order[j]])
			fmt.Printf("%7.2f", d)
			_ = i
		}
		fmt.Println()
	}

	eng := conceptrank.NewEngine(o, genes)
	fmt.Println("\nfunctional neighbors of EGFR (SDS, k=4):")
	results, _, err := eng.SDS(annot["EGFR"], conceptrank.Options{K: 4})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("  %d. %-6s distance %.3f\n", i+1, nameOf[r.Doc], r.Distance)
	}
	fmt.Println("\n(kinases cluster together; the peptidases and transcription factors are far)")
}
