// Patient-similarity search (the paper's motivating SDS scenario): a
// physician wants patients with clinical histories similar to the patient
// at the point of care. The distance is symmetric — unlike RDS, concepts
// present in only one of the two records count in both directions.
//
// The example builds a dense PATIENT-like collection, runs SDS with
// progressive result emission (the paper's optimization 4: results are
// reported as soon as they are provably in the top-k, before the search
// finishes), and shows the time breakdown the paper plots in Figure 9.
package main

import (
	"fmt"
	"log"
	"time"

	"conceptrank"
)

func main() {
	fmt.Println("generating ontology and patient records...")
	o, err := conceptrank.GenerateOntology(conceptrank.OntologyConfig{NumConcepts: 10_000, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	coll, err := conceptrank.GenerateCorpus(o, conceptrank.CorpusProfile{
		Name: "PATIENT", NumDocs: 250, ConceptsPerDoc: 180, ConceptsStdDev: 60,
		TokensPerDoc: 2000, Clustering: 0.85, DistinctTargets: 3500, Seed: 18,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := conceptrank.NewEngine(o, coll)

	patient := conceptrank.DocID(7)
	record := coll.Doc(patient)
	fmt.Printf("\nquery patient: %s (%d concepts)\n", record.Name, len(record.Concepts))

	fmt.Println("\nprogressively emitted results (available before the search completes):")
	var progressive []conceptrank.Result
	opts := conceptrank.Options{
		K:              5,
		ErrorThreshold: 0.5,
		Progressive: func(r conceptrank.Result) {
			progressive = append(progressive, r)
			fmt.Printf("  -> %s confirmed in top-5 (distance %.4f)\n", coll.Doc(r.Doc).Name, r.Distance)
		},
	}
	start := time.Now()
	results, m, err := eng.SDS(record.Concepts, opts)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Println("\nfinal top-5 similar patients:")
	for i, r := range results {
		marker := ""
		if r.Doc == patient {
			marker = "  (the query patient itself, distance 0)"
		}
		fmt.Printf("  %d. %-16s distance %.4f%s\n", i+1, coll.Doc(r.Doc).Name, r.Distance, marker)
	}
	fmt.Printf("\ntiming: total %v = distance calc %v + traversal %v (+ %v io)\n",
		elapsed.Round(time.Microsecond), m.DistanceTime.Round(time.Microsecond),
		m.TraversalTime.Round(time.Microsecond), m.IOTime.Round(time.Microsecond))
	fmt.Printf("examined %d of %d patients; %d of %d examined made the top-5 (%.0f%%)\n",
		m.DocsExamined, coll.NumDocs(), m.ResultCount, m.DocsExamined, 100*m.ExaminedPrecision())
	if len(progressive) != len(results) {
		log.Fatalf("progressive emission incomplete: %d of %d", len(progressive), len(results))
	}
}
