// Clinical-trial cohort search (the paper's motivating RDS scenario): a
// researcher holds a set of eligibility concepts — symptoms and past
// treatments — and wants the most relevant patient records. Records that
// do not contain the exact criteria but contain ontologically close
// concepts still qualify; extra concepts in a record do not count against
// it (that is the asymmetry that distinguishes RDS from SDS).
//
// The example generates a synthetic RADIO-like report collection, picks
// trial criteria from the vocabulary, and compares kNDS against the
// full-scan baseline.
package main

import (
	"fmt"
	"log"
	"time"

	"conceptrank"
)

func main() {
	fmt.Println("generating ontology and report collection...")
	o, err := conceptrank.GenerateOntology(conceptrank.OntologyConfig{NumConcepts: 12_000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	coll, err := conceptrank.GenerateCorpus(o, conceptrank.CorpusProfile{
		Name: "REPORTS", NumDocs: 1500, ConceptsPerDoc: 35, ConceptsStdDev: 12,
		TokensPerDoc: 280, Clustering: 0.3, DistinctTargets: 3000, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := conceptrank.NewEngine(o, coll)

	// Trial eligibility criteria: five concepts taken from a real record so
	// the cohort is non-trivial, then perturbed (drop two, keep three) to
	// model criteria that no record matches verbatim.
	seedDoc := coll.Doc(42).Concepts
	criteria := seedDoc[:3]
	fmt.Println("\ntrial criteria:")
	for _, c := range criteria {
		fmt.Printf("  - %s (depth %d)\n", o.Name(c), o.Depth(c))
	}

	start := time.Now()
	results, m, err := eng.RDS(criteria, conceptrank.Options{K: 10, ErrorThreshold: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-10 candidate records (kNDS, %v):\n", time.Since(start).Round(time.Microsecond))
	for i, r := range results {
		fmt.Printf("  %2d. %-16s distance %.0f  (%d concepts in record)\n",
			i+1, coll.Doc(r.Doc).Name, r.Distance, len(coll.Doc(r.Doc).Concepts))
	}
	fmt.Printf("\nkNDS examined %d of %d records (%d discovered); %d DRC probes\n",
		m.DocsExamined, coll.NumDocs(), m.DocsDiscovered, m.DRCCalls)

	scan, bm, err := eng.FullScanRDS(criteria, conceptrank.WithK(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline full scan: %v (kNDS: %v) — %.0fx speedup\n",
		bm.TotalTime.Round(time.Microsecond), m.TotalTime.Round(time.Microsecond),
		float64(bm.TotalTime)/float64(m.TotalTime))
	for i := range results {
		if results[i].Distance != scan[i].Distance {
			log.Fatalf("rank %d disagrees with baseline: %v vs %v", i, results[i], scan[i])
		}
	}
	fmt.Println("kNDS results verified against the baseline.")
}
