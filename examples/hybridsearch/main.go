// Hybrid text + concept search over generated clinical notes — the full
// pipeline in one program, and the paper's future-work combination with IR
// ranking:
//
//  1. generate an ontology and clinical-note texts (with abbreviations and
//     negations),
//  2. run the NLP pipeline (tokenize, expand abbreviations, detect
//     negation, map concepts) to build the concept index,
//  3. build a BM25 text index over the raw notes,
//  4. answer a query both ways and blended.
//
// The paper's intro motivates exactly this: a query for "aortic valve
// stenosis" should also surface notes about ontologically close findings
// that never mention the query words.
package main

import (
	"context"
	"fmt"
	"log"

	"conceptrank"
)

func main() {
	fmt.Println("generating ontology and clinical notes...")
	o, err := conceptrank.GenerateOntology(conceptrank.OntologyConfig{NumConcepts: 6000, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	ann := conceptrank.NewAnnotator(o)

	coll, notes, err := conceptrank.GenerateNoteCorpus(o, ann, conceptrank.CorpusProfile{
		Name: "NOTES", NumDocs: 400, ConceptsPerDoc: 14, ConceptsStdDev: 5,
		TokensPerDoc: 220, Clustering: 0.5, DistinctTargets: 1500, Seed: 24,
	}, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	texts := make([]string, len(notes))
	for i, n := range notes {
		texts[i] = n.Text
	}
	eng := conceptrank.NewEngine(o, coll)
	tix := conceptrank.BuildTextIndex(texts)
	fmt.Printf("indexed %d notes (%d text terms)\n\n", coll.NumDocs(), tix.NumTerms())

	// The query: one concept taken from a real note, phrased as text.
	target := coll.Doc(17).Concepts[0]
	queryText := o.Name(target)
	queryConcepts := ann.ConceptSet("Patient with " + queryText + ".")
	fmt.Printf("query text: %q (maps to concept %d)\n\n", queryText, target)

	show := func(title string, results []conceptrank.HybridResult) {
		fmt.Println(title)
		for i, r := range results {
			fmt.Printf("  %d. doc %-5d score %.3f (semantic %.3f, bm25 %.3f)\n",
				i+1, r.Doc, r.Score, r.Semantic, r.BM25)
		}
		fmt.Println()
	}

	ctx := context.Background()
	hybrid := func(alpha float64) []conceptrank.HybridResult {
		res, _, err := eng.HybridRDS(ctx, queryConcepts, queryText,
			conceptrank.WithTextIndex(tix),
			conceptrank.WithFusionWeight(alpha),
			conceptrank.WithHybridK(5))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	show("pure BM25 (alpha=0): only notes containing the words", hybrid(0))
	show("pure concept ranking (alpha=1): ontologically close notes too", hybrid(1))
	show("blended (alpha=0.6)", hybrid(0.6))

	// And the fast path for the same semantic query via kNDS:
	results, m, err := eng.RDS(queryConcepts, conceptrank.Options{K: 5, ErrorThreshold: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kNDS fast path agrees on the best semantic hit: doc %d (examined %d of %d docs)\n",
		results[0].Doc, m.DocsExamined, coll.NumDocs())
}
