package conceptrank

import (
	"context"

	"conceptrank/internal/cache"
	"conceptrank/internal/core"
	"conceptrank/internal/shard"
	"conceptrank/internal/telemetry"
)

// Sharded execution: the collection is partitioned across N per-shard kNDS
// engines, every query fans out to all shards concurrently, and the
// per-shard top-k heaps merge into a global top-k that is bitwise
// identical to a single Engine over the union collection — same documents,
// same distances, same tie-breaks, for every shard count and placement
// policy. Shards propagate progress to each other: one whose outstanding
// lower bound passes the merged k-th distance is cancelled early. See
// DESIGN.md, "Sharded execution", for the placement invariants and the
// merge proof sketch.

// ShardPlacement selects how documents are distributed across shards.
type ShardPlacement = shard.Placement

// Shard placement policies.
const (
	// RoundRobinPlacement assigns document i to shard i mod N.
	RoundRobinPlacement = shard.RoundRobin
	// SizeBalancedPlacement assigns each document to the shard with the
	// smallest total concept count so far.
	SizeBalancedPlacement = shard.SizeBalanced
)

// ParseShardPlacement resolves a placement name ("round-robin" or
// "size-balanced"), for CLI flags and configuration files.
func ParseShardPlacement(s string) (ShardPlacement, error) { return shard.ParsePlacement(s) }

// ShardConfig parameterizes a sharded engine: the number of shards (>= 1)
// and the placement policy.
type ShardConfig = shard.Config

// ShardedMetrics describes one sharded query: merged totals, the
// per-shard breakdown, and how many shards the cross-shard bound
// cancelled early.
type ShardedMetrics = shard.Metrics

// ShardedCursor is a resumable sharded query: one pipeline cursor per
// shard plus the cross-shard merger, held open so the merged ranking can
// be paged with Next and extended with GrowK — growing resumes every
// shard (including bound-paused ones) from its saved traversal state and
// returns results bitwise identical to a fresh sharded query at the
// larger k. Open with ShardedEngine.OpenRDS/OpenSDS.
type ShardedCursor = shard.Cursor

// ShardedEngine answers RDS and SDS queries over a partitioned collection.
// It is safe for concurrent queries. Results are identical to a single
// Engine over the union collection.
type ShardedEngine struct {
	inner *shard.Engine
	tel   *telemetry.Sink
	cache *cache.Cache
}

// EnableCache attaches a semantic-distance cache: Options.Cache
// propagates to every shard's plan stage, so each shard caches its own
// seed vectors while all shards share the concept-pair distances (they
// share the ontology). Rankings are unchanged. A per-query Options.Cache
// overrides the engine-level cache. Pass nil to detach. Not safe to call
// concurrently with queries.
func (e *ShardedEngine) EnableCache(c *Cache) { e.cache = c }

func (e *ShardedEngine) withCache(opts Options) Options {
	if opts.Cache == nil {
		opts.Cache = e.cache
	}
	return opts
}

// EnableTelemetry attaches sink to the sharded engine: queries record
// into the sink's registry under the "sharded_rds"/"sharded_sds" kinds,
// including the shard fan-out width, and slow or failed queries land in
// the slow log with their forwarded per-shard span events. Pass nil to
// detach. Not safe to call concurrently with queries.
func (e *ShardedEngine) EnableTelemetry(sink *Telemetry) { e.tel = sink }

func (e *ShardedEngine) instrument(kind string, opts *Options) func(*core.Metrics, error) {
	if e.tel == nil {
		return nil
	}
	trace, done := e.tel.Query(kind, opts.Trace)
	opts.Trace = trace
	return done
}

// NewShardedEngine partitions coll per cfg and indexes every shard in
// memory.
func NewShardedEngine(o *Ontology, coll *Collection, cfg ShardConfig) (*ShardedEngine, error) {
	inner, err := shard.New(o, coll, cfg)
	if err != nil {
		return nil, err
	}
	return &ShardedEngine{inner: inner}, nil
}

// SaveShardedIndexes partitions coll per cfg and writes one inverted /
// forward / docmap file triple per shard plus a manifest into dir
// (created if missing).
func SaveShardedIndexes(dir string, coll *Collection, cfg ShardConfig) error {
	return shard.SaveIndexes(dir, coll, cfg)
}

// OpenShardedDiskEngine opens the sharded disk layout previously written
// by SaveShardedIndexes. cacheBlocks bounds each store file's decoded
// block cache (0 disables caching). Close the engine when done.
func OpenShardedDiskEngine(o *Ontology, dir string, cacheBlocks int) (*ShardedEngine, error) {
	inner, err := shard.OpenDisk(o, dir, cacheBlocks)
	if err != nil {
		return nil, err
	}
	return &ShardedEngine{inner: inner}, nil
}

// NumShards returns the number of partitions.
func (e *ShardedEngine) NumShards() int { return e.inner.NumShards() }

// NumDocs returns the total number of documents across all shards.
func (e *ShardedEngine) NumDocs() int { return e.inner.NumDocs() }

// Close releases disk-backed resources (no-op for in-memory engines).
func (e *ShardedEngine) Close() error { return e.inner.Close() }

// RDS returns the k documents most relevant to the query concepts,
// searched across all shards concurrently. Options.Workers == 0 means
// serial per shard (the fan-out already fills the cores). Progressive,
// OnWave and OnBound are used internally by the merge and are ignored;
// Options.Trace is honored — per-shard span events are forwarded to it
// sequentially with TraceEvent.Shard stamped.
func (e *ShardedEngine) RDS(query []ConceptID, opts Options) ([]Result, *ShardedMetrics, error) {
	return e.RDSContext(context.Background(), query, opts)
}

// SDS returns the k documents most similar to the query document's
// concept set, searched across all shards concurrently.
func (e *ShardedEngine) SDS(queryDoc []ConceptID, opts Options) ([]Result, *ShardedMetrics, error) {
	return e.SDSContext(context.Background(), queryDoc, opts)
}

// RDSContext is RDS under a caller context: cancellation propagates to
// every shard and is observed at their wave boundaries.
func (e *ShardedEngine) RDSContext(ctx context.Context, query []ConceptID, opts Options) ([]Result, *ShardedMetrics, error) {
	opts = e.withCache(opts)
	done := e.instrument("sharded_rds", &opts)
	res, sm, err := e.inner.RDSContext(ctx, query, opts)
	if done != nil {
		done(shardedMerged(sm), err)
	}
	return res, sm, err
}

// SDSContext is SDS under a caller context.
func (e *ShardedEngine) SDSContext(ctx context.Context, queryDoc []ConceptID, opts Options) ([]Result, *ShardedMetrics, error) {
	opts = e.withCache(opts)
	done := e.instrument("sharded_sds", &opts)
	res, sm, err := e.inner.SDSContext(ctx, queryDoc, opts)
	if done != nil {
		done(shardedMerged(sm), err)
	}
	return res, sm, err
}

// OpenRDS plans a relevant-document query across all shards and returns a
// resumable cursor over the merged ranking. Cursor queries are not
// per-query telemetry-recorded; install Options.Trace for span events.
// Close the cursor when done.
func (e *ShardedEngine) OpenRDS(query []ConceptID, opts Options) (*ShardedCursor, error) {
	return e.inner.OpenRDS(query, e.withCache(opts))
}

// OpenSDS plans a similar-document query across all shards; see OpenRDS.
func (e *ShardedEngine) OpenSDS(queryDoc []ConceptID, opts Options) (*ShardedCursor, error) {
	return e.inner.OpenSDS(queryDoc, e.withCache(opts))
}

// TopKPairs returns the k lowest-Ddd document pairs across the whole
// partitioned collection: each shard's documents form one block of a
// bounded all-pairs join, the intra- and cross-block tasks fan out
// concurrently (PairOptions.Workers wide), and every task prunes against
// the shared global k-th-best threshold, which also cancels tasks with
// provably nothing left to contribute. Results are bitwise identical to
// a single Engine's TopKPairs over the union collection. An engine-level
// cache installed with EnableCache is shared by all shards unless
// PairOptions.Cache overrides it.
func (e *ShardedEngine) TopKPairs(ctx context.Context, opts PairOptions) ([]PairResult, *PairMetrics, error) {
	if opts.Cache == nil {
		opts.Cache = e.cache
	}
	return e.inner.TopKPairs(ctx, opts)
}

func shardedMerged(sm *ShardedMetrics) *core.Metrics {
	if sm == nil {
		return nil
	}
	return &sm.Merged
}

// DynamicShardedEngine is a growable ShardedEngine: AddDocument routes
// each new document to the least-loaded shard (the SizeBalanced policy)
// and the document is searchable by the next query. AddDocument may run
// concurrently with queries.
type DynamicShardedEngine struct {
	ShardedEngine
	dyn *shard.DynamicEngine
}

// NewDynamicShardedEngine returns an empty growable sharded engine.
func NewDynamicShardedEngine(o *Ontology, shards int) (*DynamicShardedEngine, error) {
	dyn, err := shard.NewDynamic(o, shards)
	if err != nil {
		return nil, err
	}
	return &DynamicShardedEngine{ShardedEngine: ShardedEngine{inner: &dyn.Engine}, dyn: dyn}, nil
}

// AddDocument routes the document to the smallest shard and returns its
// global DocID, assigned in insertion order.
func (e *DynamicShardedEngine) AddDocument(name string, concepts []ConceptID) DocID {
	return e.dyn.AddDocument(name, concepts)
}
