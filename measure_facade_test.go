package conceptrank

// Facade-level coverage of the pluggable-measure API and the consolidated
// query surface: WithMeasure end to end, engine-level EnableCache reaching
// the collapsed FullScan and MergedRDS entry points (a facade bug until
// this release — fullScan never consulted the engine cache), per-measure
// telemetry labels, and the redesigned HybridRDS.

import (
	"context"
	"testing"
	"time"
)

func TestFacadeMeasuresEndToEnd(t *testing.T) {
	o, coll := smallSetup(t)
	eng := NewEngine(o, coll)
	q := coll.Doc(0).Concepts[:3]

	ref, _, err := eng.RDS(q, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	viaRada, _, err := eng.RDS(q, NewOptions(WithK(5), WithMeasure(RadaMeasure())))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != viaRada[i] {
			t.Fatalf("RadaMeasure diverges from default at rank %d: %v vs %v", i, viaRada[i], ref[i])
		}
	}
	for _, m := range []DistanceMeasure{NewDensityMeasure(o), NewEnhancedMeasure(o)} {
		res, _, err := eng.RDS(q, NewOptions(WithK(5), WithMeasure(m)))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(res) != 5 {
			t.Fatalf("%s: %d results", m.Name(), len(res))
		}
		// Doc 0 contains every query concept: distance 0 under any measure.
		if res[0].Doc != 0 || res[0].Distance != 0 {
			t.Fatalf("%s: doc 0 should lead at distance 0: %v", m.Name(), res)
		}
		scan, _, err := eng.FullScanRDS(q, WithK(5), WithMeasure(m))
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if res[i] != scan[i] {
				t.Fatalf("%s: kNDS %v vs scan %v", m.Name(), res, scan)
			}
		}
	}
}

// TestEngineCacheReachesFullScanAndMerged pins the EnableCache bugfix: an
// engine-level cache must flow into the collapsed FullScan entry points
// and MergedRDS exactly like it flows into RDS, with identical rankings
// and observable cache traffic.
func TestEngineCacheReachesFullScanAndMerged(t *testing.T) {
	o, coll := smallSetup(t)
	q := coll.Doc(0).Concepts[:3]
	queries := [][]ConceptID{q[:2], q[1:]}
	ctx := context.Background()

	cold := NewEngine(o, coll)
	refScan, _, err := cold.FullScanRDS(q, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	refMerged, _, err := cold.MergedRDS(ctx, queries, WithK(5))
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(o, coll)
	eng.EnableCache(NewCache(CacheConfig{}))
	var sawTraffic bool
	for pass := 0; pass < 2; pass++ {
		scan, m, err := eng.FullScanRDS(q, WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		if m.CacheHits+m.CacheMisses == 0 {
			t.Fatalf("pass %d: FullScanRDS ignored the engine cache", pass)
		}
		if pass == 1 && m.CacheHits > 0 {
			sawTraffic = true
		}
		for i := range refScan {
			if scan[i] != refScan[i] {
				t.Fatalf("cached scan diverges at rank %d: %v vs %v", i, scan[i], refScan[i])
			}
		}
		merged, mm, err := eng.MergedRDS(ctx, queries, WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		if mm.CacheHits+mm.CacheMisses == 0 {
			t.Fatalf("pass %d: MergedRDS ignored the engine cache", pass)
		}
		for i := range refMerged {
			if merged[i] != refMerged[i] {
				t.Fatalf("cached merged diverges at rank %d: %v vs %v", i, merged[i], refMerged[i])
			}
		}
	}
	if !sawTraffic {
		t.Fatal("second scan produced no cache hits")
	}
	// An explicit WithCache still wins over the engine-level cache.
	private := NewCache(CacheConfig{})
	if _, m, err := eng.FullScanRDS(q, WithK(5), WithCache(private)); err != nil {
		t.Fatal(err)
	} else if m.CacheMisses == 0 {
		t.Fatal("explicit WithCache did not override the warm engine cache")
	}
}

// TestTelemetryPerMeasureLabels: queries under a non-default measure are
// recorded under "<kind>_<measure>" so per-measure dashboards come free.
// The slow log keeps the kind per entry; a 1ns threshold records all.
func TestTelemetryPerMeasureLabels(t *testing.T) {
	o, coll := smallSetup(t)
	eng := NewEngine(o, coll)
	sink := NewTelemetry(TelemetryConfig{SlowThreshold: time.Nanosecond})
	eng.EnableTelemetry(sink)
	q := coll.Doc(0).Concepts[:2]

	if _, _, err := eng.RDS(q, Options{K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.RDS(q, NewOptions(WithK(3), WithMeasure(NewDensityMeasure(o)))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.FullScanRDS(q, WithK(3), WithMeasure(NewEnhancedMeasure(o))); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]bool{}
	for _, e := range sink.Slow.Snapshot() {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"rds", "rds_density", "scan_rds_enhanced"} {
		if !kinds[want] {
			t.Fatalf("telemetry kinds missing %q: %v", want, kinds)
		}
	}
}

// TestHybridRDSRedesign exercises the context+options HybridRDS: defaults,
// fusion weight extremes, measure selection and the no-text-index
// degradation.
func TestHybridRDSRedesign(t *testing.T) {
	o, coll := smallSetup(t)
	eng := NewEngine(o, coll)
	q := coll.Doc(0).Concepts[:2]
	ctx := context.Background()

	// No text index: pure semantic ranking, metrics from the scan.
	res, m, err := eng.HybridRDS(ctx, q, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("default k: %d results", len(res))
	}
	if m == nil || m.DocsExamined == 0 {
		t.Fatalf("metrics missing: %+v", m)
	}
	if res[0].BM25 != 0 {
		t.Fatalf("no text index but BM25 signal present: %+v", res[0])
	}
	// Doc 0 contains the query concepts: top semantic similarity.
	if res[0].Semantic != 1 {
		t.Fatalf("top semantic should normalize to 1: %+v", res[0])
	}

	// Under a measure, with an explicit k.
	res2, _, err := eng.HybridRDS(ctx, q, "",
		WithHybridMeasure(NewDensityMeasure(o)), WithHybridK(4), WithFusionWeight(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 4 || res2[0].Semantic != 1 {
		t.Fatalf("measure hybrid: %+v", res2)
	}

	// The options-based hybrid surface works against a real text index.
	texts := make([]string, coll.NumDocs())
	for i := range texts {
		texts[i] = "note " + o.Name(q[0])
	}
	tix := BuildTextIndex(texts)
	hybRes, _, err := eng.HybridRDS(ctx, q, o.Name(q[0]),
		WithTextIndex(tix), WithFusionWeight(0.7), WithHybridK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(hybRes) == 0 {
		t.Fatal("hybrid query returned no results")
	}

	// MergedRDS ranks across query variants.
	queries := [][]ConceptID{q[:1], q[1:]}
	mRes, _, err := eng.MergedRDS(ctx, queries, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(mRes) == 0 {
		t.Fatal("merged query returned no results")
	}
}
