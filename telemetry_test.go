package conceptrank_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"conceptrank"
)

func telemetryEnv(t *testing.T) (*conceptrank.Ontology, *conceptrank.Collection) {
	t.Helper()
	o, err := conceptrank.GenerateOntology(conceptrank.OntologyConfig{NumConcepts: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := conceptrank.GenerateCorpus(o, conceptrank.RadioProfile(0.02, 5))
	if err != nil {
		t.Fatal(err)
	}
	return o, coll
}

// TestEngineTelemetryEndToEnd drives the acceptance path: an engine with
// telemetry enabled serves /metrics whose counters and histograms change
// across queries, the caller's own Trace hook still fires, and the slow
// log captures span events.
func TestEngineTelemetryEndToEnd(t *testing.T) {
	o, coll := telemetryEnv(t)
	eng := conceptrank.NewEngine(o, coll)
	tel := conceptrank.NewTelemetry(conceptrank.TelemetryConfig{SlowThreshold: time.Nanosecond})
	eng.EnableTelemetry(tel)

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()
	fetch := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if !strings.Contains(fetch("/metrics"), "conceptrank_queries_total 0") {
		t.Fatal("/metrics should expose zeroed instruments before any query")
	}

	var hookEvents int
	q := []conceptrank.ConceptID{3, 11, 57}
	_, m, err := eng.RDS(q, conceptrank.Options{K: 5, ErrorThreshold: 0.5,
		Trace: func(conceptrank.TraceEvent) { hookEvents++ }})
	if err != nil {
		t.Fatal(err)
	}
	if hookEvents == 0 {
		t.Fatal("caller trace hook was not chained")
	}
	if _, _, err := eng.SDS(coll.Doc(0).Concepts, conceptrank.Options{K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.FullScanRDS(q, conceptrank.WithK(5)); err != nil {
		t.Fatal(err)
	}

	body := fetch("/metrics")
	for _, want := range []string{
		"conceptrank_queries_total 3",
		"conceptrank_query_latency_seconds_count 3",
		"conceptrank_query_terminal_epsilon_count 3",
		"conceptrank_query_drc_calls_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q after queries:\n%s", want, body)
		}
	}
	if m.DocsExamined == 0 {
		t.Fatal("query examined nothing; telemetry test is vacuous")
	}

	slow := fetch("/debug/slowlog")
	for _, want := range []string{`"kind": "rds"`, `"kind": "sds"`, `"kind": "scan_rds"`, `"WaveStart"`} {
		if !strings.Contains(slow, want) {
			t.Fatalf("/debug/slowlog missing %s:\n%s", want, slow)
		}
	}
}

// TestShardedEngineTelemetry checks the sharded kinds and the fan-out
// histogram fed from the ShardMerge span event.
func TestShardedEngineTelemetry(t *testing.T) {
	o, coll := telemetryEnv(t)
	se, err := conceptrank.NewShardedEngine(o, coll, conceptrank.ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	tel := conceptrank.NewTelemetry(conceptrank.TelemetryConfig{})
	se.EnableTelemetry(tel)

	if _, _, err := se.RDS([]conceptrank.ConceptID{3, 11}, conceptrank.Options{K: 5}); err != nil {
		t.Fatal(err)
	}
	if tel.Stats.ShardFanout.Count() != 1 || tel.Stats.ShardFanout.Sum() != 3 {
		t.Fatalf("fan-out histogram: count=%d sum=%v, want one sample of 3",
			tel.Stats.ShardFanout.Count(), tel.Stats.ShardFanout.Sum())
	}
	if tel.Stats.Queries.Value() != 1 {
		t.Fatalf("queries = %d", tel.Stats.Queries.Value())
	}
}

// TestTelemetryDisabledIsUntouched: without EnableTelemetry the facade
// passes Options through unchanged (no trace splicing).
func TestTelemetryDisabledIsUntouched(t *testing.T) {
	o, coll := telemetryEnv(t)
	eng := conceptrank.NewEngine(o, coll)
	res, m, err := eng.RDS([]conceptrank.ConceptID{3, 11}, conceptrank.Options{K: 5})
	if err != nil || len(res) == 0 || m == nil {
		t.Fatalf("plain query failed: %v %v %v", res, m, err)
	}
}
