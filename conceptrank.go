// Package conceptrank is a library for efficient concept-based document
// ranking over ontology-annotated document collections, reproducing
// Arvanitis, Wiley and Hristidis, "Efficient Concept-based Document
// Ranking" (EDBT 2014).
//
// Documents are sets of concepts drawn from a rooted is-a DAG ontology
// (SNOMED-CT-like). The library answers two query types:
//
//   - RDS (Relevant Document Search): the k documents minimizing the
//     document-query distance — the sum over query concepts of the shortest
//     valid-path distance to the document's nearest concept.
//   - SDS (Similar Document Search): the k documents minimizing the
//     symmetric document-document distance of Melton et al.
//
// Both run on the kNDS branch-and-bound algorithm with DRC (D-Radix
// Construction) as its O(n log n) distance component. The package also
// bundles the substrates a self-contained deployment needs: a calibrated
// synthetic ontology generator, synthetic EMR corpus generators, a
// MetaMap-like concept-extraction pipeline (tokenizer, abbreviation
// expansion, negation detection, dictionary matching), disk-backed indexes,
// and baseline implementations (full scan, pairwise BL, Threshold
// Algorithm) for comparison.
//
// # Distance measures
//
// The paper's Rada shortest-valid-path distance is the default, but the
// concept-pair distance is pluggable: pass WithMeasure (or set
// Options.Measure) with a DistanceMeasure — RadaMeasure, NewDensityMeasure
// or NewEnhancedMeasure, or any implementation of the contract documented
// in internal/measure — and every entry point (RDS/SDS, cursors, batches,
// full scans, MergedRDS, HybridRDS, sharded engines) ranks under that
// measure through the same pruning, cache and telemetry infrastructure.
// Rankings stay exact for every conforming measure; cache entries are
// keyed per measure, so warm results never cross measures.
//
// # Distance helpers
//
// The package-level distance helpers (ConceptDistance, DocQueryDistance,
// DocDocDistance, DocQueryDistanceWeighted, DocDocDistanceWeighted) share
// one error convention: they return a bare value, and inputs with no
// valid connecting path (or a D-Radix construction failure) yield the
// distance sentinel float64(MaxInt32) rather than an error. Weighted and
// unweighted forms behave identically; no helper returns an error.
//
// # Quick start
//
//	o, _ := conceptrank.GenerateOntology(conceptrank.OntologyConfig{NumConcepts: 10000, Seed: 1})
//	coll, _ := conceptrank.GenerateCorpus(o, conceptrank.RadioProfile(0.05, 2))
//	eng := conceptrank.NewEngine(o, coll)
//	results, metrics, _ := eng.RDS([]conceptrank.ConceptID{42, 99}, conceptrank.Options{K: 10})
//
// See examples/ for complete programs and DESIGN.md for the paper mapping.
package conceptrank

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"conceptrank/internal/cache"
	"conceptrank/internal/core"
	"conceptrank/internal/corpus"
	"conceptrank/internal/distance"
	"conceptrank/internal/drc"
	"conceptrank/internal/emrgen"
	"conceptrank/internal/index"
	"conceptrank/internal/measure"
	"conceptrank/internal/nlp"
	"conceptrank/internal/ontogen"
	"conceptrank/internal/ontology"
	"conceptrank/internal/store"
	"conceptrank/internal/telemetry"
)

// Core identifiers and data types, re-exported from the internal packages.
type (
	// ConceptID identifies a concept within an Ontology.
	ConceptID = ontology.ConceptID
	// DocID identifies a document within a Collection.
	DocID = corpus.DocID
	// Ontology is a rooted is-a concept DAG with Dewey addressing.
	Ontology = ontology.Ontology
	// OntologyBuilder assembles an Ontology by hand.
	OntologyBuilder = ontology.Builder
	// OntologyStats aggregates structural ontology statistics.
	OntologyStats = ontology.Stats
	// Collection is a set of concept-annotated documents.
	Collection = corpus.Collection
	// Document is one document of a Collection.
	Document = corpus.Document
	// CorpusStats aggregates collection statistics (the paper's Table 3).
	CorpusStats = corpus.Stats
	// Result is one ranked document.
	Result = core.Result
	// PairResult is one ranked document pair (canonical: A < B) returned
	// by the all-pairs join TopKPairs.
	PairResult = core.PairResult
	// PairOptions configures a TopKPairs join (k, error threshold,
	// Workers for the sharded block fan-out, cache, trace).
	PairOptions = core.PairOptions
	// PairMetrics describes one TopKPairs join: seed/join times, the pair
	// universe, discovered/examined/pruned counts, levels, block tasks
	// and cancellations.
	PairMetrics = core.PairMetrics
	// Metrics reports where a query spent its time.
	Metrics = core.Metrics
	// Stage identifies one pipeline stage for resource attribution
	// (StagePlan .. StageMerge); Metrics.Stages is indexed by it.
	Stage = core.Stage
	// StageStat is one stage's resource account within one query: wall
	// time always, allocation deltas when the query ran WithStageAllocs.
	StageStat = core.StageStat
	// StageStats is a query's per-stage breakdown (Metrics.Stages).
	StageStats = core.StageStats
	// Options configures a kNDS query (k, error threshold, queue limit,
	// intra-query Workers — see the Parallel execution section of
	// DESIGN.md; results are identical at every Workers setting).
	Options = core.Options
	// Cursor is a resumable, steppable kNDS query: open with
	// Engine.OpenRDS/OpenSDS, page with Next, extend the ranking with
	// GrowK (bitwise identical to a fresh larger-k query), Close when
	// done. See DESIGN.md, "Query pipeline".
	Cursor = core.Cursor
	// Batch schedules many queries over per-query cursors; a cancelled
	// Run keeps each unfinished query's pipeline state and the next Run
	// resumes it. Construct with Engine.NewBatchRDS/NewBatchSDS.
	Batch = core.Batch
	// ExamPolicy is the pluggable examination-decision stage of the query
	// pipeline (Options.ExamPolicy); nil selects the paper's threshold
	// rule. Custom policies must be deterministic.
	ExamPolicy = core.ExamPolicy
	// ExamDecision is the evidence an ExamPolicy decides on.
	ExamDecision = core.ExamDecision
	// Option is a functional query option (WithK, WithEpsilon, WithWorkers,
	// WithQueueLimit, WithTrace) applied over Options.
	Option = core.Option
	// TraceEvent is one typed span event observed by a per-query Trace
	// hook (BFS waves, DRC probes, bound movement, shard fan-out).
	TraceEvent = core.TraceEvent
	// TraceKind enumerates the span event types.
	TraceKind = core.TraceKind
	// TraceFunc receives span events; install with Options.Trace or
	// WithTrace. Delivery is sequential on the query's goroutine.
	TraceFunc = core.TraceFunc
	// Telemetry bundles the runtime metrics registry, per-query stats and
	// the slow-query log; attach one to an engine with EnableTelemetry and
	// expose it with its Handler or Serve methods.
	Telemetry = telemetry.Sink
	// Cache is the shared semantic-distance cache: per-concept Ddc seed
	// vectors and concept-pair distances, LRU-evicted under a byte budget,
	// with generation-based invalidation for growing corpora. Attach one to
	// an engine with EnableCache (or per query via Options.Cache /
	// WithCache); rankings are bitwise identical with and without it. Safe
	// for concurrent use and shareable across engines.
	Cache = cache.Cache
	// CacheConfig parameterizes NewCache (byte budget, shard count,
	// admission threshold). The zero value is usable: 64 MiB, 16 shards,
	// admit on first miss.
	CacheConfig = cache.Config
	// CacheStats is a point-in-time snapshot of a Cache's counters.
	CacheStats = cache.Stats
	// TelemetryConfig parameterizes NewTelemetry (prefix, slow-query
	// threshold and capacity). The zero value is usable.
	TelemetryConfig = telemetry.Config
	// OntologyConfig parameterizes the synthetic ontology generator.
	OntologyConfig = ontogen.Config
	// CorpusProfile parameterizes the synthetic EMR corpus generator.
	CorpusProfile = emrgen.Profile
	// Annotator extracts ontology concepts from clinical text (tokenizer,
	// abbreviation expansion, negation detection, dictionary matching).
	Annotator = nlp.Matcher
	// Mention is one recognized concept occurrence in text.
	Mention = nlp.Mention
	// DistanceMeasure is a pluggable concept-pair distance (Options.Measure
	// / WithMeasure). Implementations must satisfy the symmetry, identity
	// and monotone level-bound contract documented in internal/measure; the
	// built-ins are RadaMeasure, NewDensityMeasure and NewEnhancedMeasure.
	DistanceMeasure = measure.Measure
)

// RadaMeasure returns the paper's default shortest-valid-path distance as
// an explicit DistanceMeasure. A nil Options.Measure selects the same
// distance on its DRC fast path; passing RadaMeasure() routes it through
// the generic measure machinery instead (rankings are bitwise identical —
// the equivalence grids in internal/core pin the two paths).
func RadaMeasure() DistanceMeasure { return measure.Rada() }

// NewDensityMeasure returns the density-compensated path distance (after
// Zhu et al.): path hops through dense ontology regions count as smaller
// semantic steps. The measure precomputes per-concept density factors of o
// and must only be used with engines over the same ontology.
func NewDensityMeasure(o *Ontology) DistanceMeasure { return measure.NewDensity(o) }

// NewEnhancedMeasure returns the depth-weighted distance (after Daoui et
// al.): the same path length separates deep, specific concepts less than
// shallow, general ones. Precomputes per-concept depths of o; use only
// with engines over the same ontology.
func NewEnhancedMeasure(o *Ontology) DistanceMeasure { return measure.NewEnhanced(o) }

// Functional options, re-exported from internal/core. They layer over the
// Options struct: NewOptions(WithK(5)) is Options{K: 5}, and any Options
// value can be refined with opts.With(WithWorkers(4)).

// WithK sets the number of results (Options.K).
func WithK(k int) Option { return core.WithK(k) }

// WithEpsilon sets the examination error threshold ε_θ
// (Options.ErrorThreshold).
func WithEpsilon(eps float64) Option { return core.WithEpsilon(eps) }

// WithWorkers sets the intra-query worker bound (Options.Workers).
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithQueueLimit sets the BFS queue bound (Options.QueueLimit).
func WithQueueLimit(n int) Option { return core.WithQueueLimit(n) }

// WithTrace installs a per-query span-event hook (Options.Trace). Tracing
// is observation-only — it never changes results — and a nil hook costs
// one branch per would-be event.
func WithTrace(fn TraceFunc) Option { return core.WithTrace(fn) }

// WithCache attaches a distance cache to one query (Options.Cache). For
// engine-wide caching use Engine.EnableCache instead.
func WithCache(c *Cache) Option { return core.WithCache(c) }

// WithMeasure selects the semantic distance measure for one query
// (Options.Measure). nil — the default — is the paper's Rada distance on
// its DRC fast path. Telemetry labels queries per measure (e.g. an RDS
// query under the density measure records as "rds_density").
func WithMeasure(m DistanceMeasure) Option { return core.WithMeasure(m) }

// WithStageAllocs opts one query into per-stage heap-allocation sampling
// (Options.StageAllocs): Metrics.Stages then carries allocation deltas
// next to the always-on stage wall times. The deltas are process-wide
// allocation counters sampled at stage boundaries (~1µs per boundary), so
// attribute on an otherwise idle process for exact numbers.
func WithStageAllocs() Option { return core.WithStageAllocs() }

// WithArenaRetainBytes caps the per-query arena memory an engine keeps
// pooled between queries (Options.ArenaRetainBytes). Queries carve their
// mutable state from recycled arenas, so a warm engine allocates almost
// nothing per query; the cap bounds what one outlier query can pin. 0
// selects the default cap (8 MiB per pooled arena); a negative value
// disables retention. Results are identical at every setting.
func WithArenaRetainBytes(n int64) Option { return core.WithArenaRetainBytes(n) }

// Pipeline stages of the per-query resource attribution (Metrics.Stages),
// re-exported from the engine.
const (
	StagePlan    = core.StagePlan
	StageSeed    = core.StageSeed
	StageWave    = core.StageWave
	StageBound   = core.StageBound
	StageExam    = core.StageExam
	StageCollect = core.StageCollect
	StageMerge   = core.StageMerge
	// NumStages is the length of Metrics.Stages.
	NumStages = core.NumStages
)

// Span event kinds a Trace hook can observe, re-exported from the engine.
const (
	TraceWaveStart     = core.TraceWaveStart
	TraceWaveEnd       = core.TraceWaveEnd
	TraceForcedExam    = core.TraceForcedExam
	TraceDRCProbe      = core.TraceDRCProbe
	TraceBound         = core.TraceBound
	TraceTerminate     = core.TraceTerminate
	TraceShardDispatch = core.TraceShardDispatch
	TraceShardMerge    = core.TraceShardMerge
	TraceCacheHit      = core.TraceCacheHit
	TraceCacheMiss     = core.TraceCacheMiss
	TracePairLevel     = core.TracePairLevel
	TracePairExam      = core.TracePairExam
	TracePairBlock     = core.TracePairBlock
)

// ThresholdPolicy returns the paper's default examination policy: examine
// while the Eq. 9 error estimate is within eps, unconditionally on forced
// examinations and at traversal exhaustion.
func ThresholdPolicy(eps float64) ExamPolicy { return core.ThresholdPolicy(eps) }

// ErrCursorClosed is returned by operations on a closed Cursor.
var ErrCursorClosed = core.ErrCursorClosed

// NewTelemetry builds a telemetry sink. Share one sink across the engines
// of a process (or give each engine its own Prefix) and mount its Handler
// — /metrics, /debug/vars, /debug/slowlog, /debug/pprof/* — or call its
// Serve method to bind an introspection listener.
func NewTelemetry(cfg TelemetryConfig) *Telemetry { return telemetry.New(cfg) }

// NewCache builds a semantic-distance cache. One cache can back any
// number of engines — entries are namespaced per engine (seed vectors)
// and per ontology (pair distances), so sharing never mixes corpora.
func NewCache(cfg CacheConfig) *Cache { return cache.New(cfg) }

// NewOptions builds an Options value by applying opts over the zero value.
func NewOptions(opts ...Option) Options { return core.NewOptions(opts...) }

// NewOntologyBuilder starts a hand-built ontology whose root concept
// carries rootName.
func NewOntologyBuilder(rootName string) *OntologyBuilder {
	return ontology.NewBuilder(rootName)
}

// NewCollection returns an empty document collection.
func NewCollection() *Collection { return corpus.New() }

// GenerateOntology builds a synthetic SNOMED-like ontology calibrated to
// the published structural statistics (see internal/ontogen).
func GenerateOntology(cfg OntologyConfig) (*Ontology, error) { return ontogen.Generate(cfg) }

// PatientProfile returns the dense PATIENT corpus profile of the paper's
// Table 3, scaled by scale (1.0 = published size).
func PatientProfile(scale float64, seed int64) CorpusProfile { return emrgen.Patient(scale, seed) }

// RadioProfile returns the sparse RADIO corpus profile of the paper's
// Table 3, scaled by scale.
func RadioProfile(scale float64, seed int64) CorpusProfile { return emrgen.Radio(scale, seed) }

// GenerateCorpus builds a synthetic concept-set collection over o.
func GenerateCorpus(o *Ontology, p CorpusProfile) (*Collection, error) {
	return emrgen.GenerateConceptSets(o, p)
}

// NewAnnotator builds the concept-extraction pipeline from the ontology's
// terms, synonyms and abbreviations.
func NewAnnotator(o *Ontology) *Annotator { return nlp.NewMatcher(o) }

// Note is one generated clinical note with its ground-truth annotation.
type Note = emrgen.Note

// GenerateNoteCorpus renders synthetic clinical-note text (with
// abbreviated and negated mentions) and builds the collection by running
// the notes through the NLP pipeline — the same document construction flow
// the paper used with MetaMap. negatedFrac of each note's concepts are
// mentioned under negation and therefore excluded from the index.
func GenerateNoteCorpus(o *Ontology, ann *Annotator, p CorpusProfile, negatedFrac float64) (*Collection, []Note, error) {
	return emrgen.GenerateNotes(o, ann, p, negatedFrac)
}

// ConceptDistance returns the shortest valid-path distance between two
// concepts (a valid path passes through a common ancestor).
func ConceptDistance(o *Ontology, a, b ConceptID) int { return distance.ConceptDistance(o, a, b) }

// DocQueryDistance computes the RDS distance Ddq(doc, query) with DRC.
func DocQueryDistance(o *Ontology, doc, query []ConceptID) float64 {
	return drc.NewCalculator(o, 0).DocQuery(doc, query)
}

// DocDocDistance computes the symmetric SDS distance Ddd(d1, d2) with DRC.
func DocDocDistance(o *Ontology, d1, d2 []ConceptID) float64 {
	return drc.NewCalculator(o, 0).DocDoc(d1, d2)
}

// Engine evaluates RDS and SDS queries over one indexed collection.
type Engine struct {
	inner   *core.Engine
	o       *Ontology
	fwd     index.Forward
	numDocs func() int
	io      *store.IOStats
	files   []interface{ Close() error }
	tel     *telemetry.Sink
	cache   *cache.Cache
}

// EnableCache attaches a semantic-distance cache to the engine: every
// subsequent RDS query (including cursors and batches) resolves its seed
// vectors through c, skipping the ontology traversal on warm concepts.
// Rankings are bitwise identical with and without the cache; only timings
// and traversal counters change. A per-query Options.Cache overrides the
// engine-level cache. Pass nil to detach. Not safe to call concurrently
// with queries.
func (e *Engine) EnableCache(c *Cache) { e.cache = c }

// withCache defaults opts.Cache to the engine-level cache installed by
// EnableCache; an explicit per-query Options.Cache wins.
func (e *Engine) withCache(opts Options) Options {
	if opts.Cache == nil {
		opts.Cache = e.cache
	}
	return opts
}

// EnableTelemetry attaches sink to the engine: every subsequent query
// (RDS, SDS, full scans) records its latency, counters and ε_d into the
// sink's registry, and slow or failed queries are captured — with their
// span-event streams — in the sink's slow log. A caller-provided
// Options.Trace hook keeps working; the sink chains to it. Batch entry
// points are not per-query recorded. Pass nil to detach. Not safe to call
// concurrently with queries.
func (e *Engine) EnableTelemetry(sink *Telemetry) { e.tel = sink }

// instrument opens a telemetry recording for one query, splicing the
// sink's recorder in front of any caller trace hook. It returns nil when
// telemetry is disabled — the query then runs exactly as before. Queries
// under a non-default measure record under a per-measure label
// ("rds_density", "scan_rds_enhanced", ...), so dashboards separate
// measures the way they separate query kinds.
func (e *Engine) instrument(kind string, opts *Options) func(*Metrics, error) {
	if e.tel == nil {
		return nil
	}
	if opts.Measure != nil {
		kind += "_" + opts.Measure.Name()
	}
	trace, done := e.tel.Query(kind, opts.Trace)
	opts.Trace = trace
	return done
}

// NewEngine indexes coll in memory and returns a ready engine.
func NewEngine(o *Ontology, coll *Collection) *Engine {
	fwd := index.BuildMemForward(coll)
	n := coll.NumDocs()
	return &Engine{
		inner:   core.NewEngine(o, index.BuildMemInverted(coll), fwd, n, nil),
		o:       o,
		fwd:     fwd,
		numDocs: func() int { return n },
	}
}

// Filenames used by SaveIndexes / OpenDiskEngine within a data directory.
const (
	OntologyFile = "ontology.cro"
	InvertedFile = "inverted.crs"
	ForwardFile  = "forward.crs"
)

// SaveIndexes writes disk-backed inverted and forward indexes for coll
// into dir.
func SaveIndexes(dir string, coll *Collection) error {
	if err := store.BuildInvertedFile(filepath.Join(dir, InvertedFile), coll); err != nil {
		return err
	}
	return store.BuildForwardFile(filepath.Join(dir, ForwardFile), coll)
}

// OpenDiskEngine opens the disk-backed indexes previously written by
// SaveIndexes. numDocs must match the indexed collection. cacheBlocks
// bounds the per-file decoded block cache (0 disables caching). Close the
// engine when done.
func OpenDiskEngine(o *Ontology, dir string, numDocs, cacheBlocks int) (*Engine, error) {
	io := &store.IOStats{}
	inv, err := store.OpenInverted(filepath.Join(dir, InvertedFile), io, cacheBlocks)
	if err != nil {
		return nil, err
	}
	fwd, err := store.OpenForward(filepath.Join(dir, ForwardFile), io, cacheBlocks)
	if err != nil {
		inv.Close()
		return nil, err
	}
	return &Engine{
		inner:   core.NewEngine(o, inv, fwd, numDocs, io),
		o:       o,
		fwd:     fwd,
		numDocs: func() int { return numDocs },
		io:      io,
		files:   []interface{ Close() error }{inv, fwd},
	}, nil
}

// DynamicEngine is an Engine over a mutable collection: documents added
// with AddDocument are searchable immediately, with no precomputation or
// index rebuild — the operational advantage the paper claims for kNDS over
// distance-precomputation schemes such as the Threshold Algorithm.
// AddDocument may run concurrently with queries.
type DynamicEngine struct {
	Engine
	dyn     *index.Dynamic
	journal *store.Journal
}

// NewDynamicEngine returns an empty, growable engine over o.
func NewDynamicEngine(o *Ontology) *DynamicEngine {
	dyn := index.NewDynamic()
	return &DynamicEngine{
		Engine: Engine{
			inner: core.NewEngineDynamic(o, dyn, dyn, dyn.NumDocs, nil),
			o:     o, fwd: dyn, numDocs: dyn.NumDocs,
		},
		dyn: dyn,
	}
}

// NewDynamicEngineFrom bulk-loads an existing collection and stays
// growable.
func NewDynamicEngineFrom(o *Ontology, coll *Collection) *DynamicEngine {
	dyn := index.FromCollection(coll)
	return &DynamicEngine{
		Engine: Engine{
			inner: core.NewEngineDynamic(o, dyn, dyn, dyn.NumDocs, nil),
			o:     o, fwd: dyn, numDocs: dyn.NumDocs,
		},
		dyn: dyn,
	}
}

// OpenJournaledEngine opens a growable engine whose documents are durably
// logged to a write-ahead journal at path: existing intact records are
// replayed on open (a torn tail from a crash is truncated), and every
// AddDocument is appended and fsynced before it returns.
func OpenJournaledEngine(o *Ontology, path string) (*DynamicEngine, error) {
	dyn := index.NewDynamic()
	_, err := store.ReplayJournal(path, func(r store.JournalRecord) error {
		concepts := make([]ConceptID, len(r.Concepts))
		for i, c := range r.Concepts {
			concepts[i] = ConceptID(c)
		}
		dyn.AddDocument(r.Name, concepts)
		return nil
	})
	if err != nil {
		return nil, err
	}
	j, err := store.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	e := &DynamicEngine{
		Engine: Engine{
			inner: core.NewEngineDynamic(o, dyn, dyn, dyn.NumDocs, nil),
			o:     o, fwd: dyn, numDocs: dyn.NumDocs,
			files: []interface{ Close() error }{j},
		},
		dyn:     dyn,
		journal: j,
	}
	return e, nil
}

// AddDocument indexes a new document and returns its ID. On a journaled
// engine the document is logged and fsynced first; a journal failure
// panics rather than silently dropping durability (callers that need
// softer handling should use AddDocumentDurable).
func (e *DynamicEngine) AddDocument(name string, concepts []ConceptID) DocID {
	id, err := e.AddDocumentDurable(name, concepts)
	if err != nil {
		panic(fmt.Sprintf("conceptrank: journal append failed: %v", err))
	}
	return id
}

// AddDocumentDurable is AddDocument with an explicit error for journal
// failures.
func (e *DynamicEngine) AddDocumentDurable(name string, concepts []ConceptID) (DocID, error) {
	if e.journal != nil {
		set := make([]uint32, len(concepts))
		for i, c := range concepts {
			set[i] = uint32(c)
		}
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		dedup := set[:0]
		for i, c := range set {
			if i == 0 || c != set[i-1] {
				dedup = append(dedup, c)
			}
		}
		if err := e.journal.Append(store.JournalRecord{Name: name, Concepts: dedup}); err != nil {
			return 0, err
		}
		if err := e.journal.Sync(); err != nil {
			return 0, err
		}
	}
	return e.dyn.AddDocument(name, concepts), nil
}

// NumDocs returns the current collection size.
func (e *DynamicEngine) NumDocs() int { return e.dyn.NumDocs() }

// DocName returns the name a document was added under.
func (e *DynamicEngine) DocName(id DocID) string { return e.dyn.Name(id) }

// DocConcepts returns a document's indexed concept set.
func (e *DynamicEngine) DocConcepts(id DocID) ([]ConceptID, error) { return e.dyn.Concepts(id) }

// Close releases disk resources (no-op for memory engines).
func (e *Engine) Close() error {
	var first error
	for _, f := range e.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.files = nil
	return first
}

// RDS returns the k documents most relevant to the query concepts.
func (e *Engine) RDS(query []ConceptID, opts Options) ([]Result, *Metrics, error) {
	return e.RDSContext(context.Background(), query, opts)
}

// SDS returns the k documents most similar to the query document's
// concept set.
func (e *Engine) SDS(queryDoc []ConceptID, opts Options) ([]Result, *Metrics, error) {
	return e.SDSContext(context.Background(), queryDoc, opts)
}

// RDSContext is RDS under a caller context. Cancellation is observed at
// wave boundaries inside kNDS (once per BFS depth level); a cancelled
// query returns ctx.Err() with nil results and the metrics accumulated so
// far. RDS is exactly RDSContext with context.Background().
func (e *Engine) RDSContext(ctx context.Context, query []ConceptID, opts Options) ([]Result, *Metrics, error) {
	opts = e.withCache(opts)
	done := e.instrument("rds", &opts)
	res, m, err := e.inner.RDSContext(ctx, query, opts)
	if done != nil {
		done(m, err)
	}
	return res, m, err
}

// SDSContext is SDS under a caller context; see RDSContext for the
// cancellation contract.
func (e *Engine) SDSContext(ctx context.Context, queryDoc []ConceptID, opts Options) ([]Result, *Metrics, error) {
	opts = e.withCache(opts)
	done := e.instrument("sds", &opts)
	res, m, err := e.inner.SDSContext(ctx, queryDoc, opts)
	if done != nil {
		done(m, err)
	}
	return res, m, err
}

// OpenRDS plans a relevant-document query and returns a resumable cursor:
// page through the ranking with Next, extend it with GrowK (results are
// bitwise identical to a fresh query with the larger k), cancel and retry
// at wave boundaries via contexts. Close the cursor when done. Cursor
// queries are not per-query telemetry-recorded (like the batch entry
// points); install Options.Trace for span-level observation.
func (e *Engine) OpenRDS(query []ConceptID, opts Options) (*Cursor, error) {
	return e.inner.OpenRDS(query, e.withCache(opts))
}

// OpenSDS plans a similar-document query as a resumable cursor; see
// OpenRDS.
func (e *Engine) OpenSDS(queryDoc []ConceptID, opts Options) (*Cursor, error) {
	return e.inner.OpenSDS(queryDoc, e.withCache(opts))
}

// TopKPairs returns the k document pairs with the smallest symmetric
// distance Ddd, in ascending canonical (distance, A, B) order, without
// evaluating all O(n^2) candidates: per-concept exact Ddc vectors (the
// same cache-aware seeds RDS queries use) drive a level-synchronous
// bounded join that prunes candidate pairs against the running k-th best
// pair. Results are bitwise identical to the naive oracle at every
// option setting; an engine-level cache installed with EnableCache is
// used unless PairOptions.Cache overrides it. See DESIGN.md, "All-pairs
// semantic join".
func (e *Engine) TopKPairs(ctx context.Context, opts PairOptions) ([]PairResult, *PairMetrics, error) {
	if opts.Cache == nil {
		opts.Cache = e.cache
	}
	return e.inner.TopKPairs(ctx, opts)
}

// TopKPairsNaive is the O(n^2) reference join (every eligible pair's
// exact Ddd via DRC) — the oracle TopKPairs is pinned against, exposed
// for benchmarking and verification.
func (e *Engine) TopKPairsNaive(ctx context.Context, opts PairOptions) ([]PairResult, *PairMetrics, error) {
	return e.inner.TopKPairsNaive(ctx, opts)
}

// NewBatchRDS prepares a resumable batch of RDS queries over per-query
// cursors: Run drives every unfinished query to termination, a cancelled
// Run keeps per-query pipeline state for the next Run, and Cursor(i)
// exposes each query's cursor (e.g. to GrowK individual queries after the
// batch completes). Close the batch when done.
func (e *Engine) NewBatchRDS(queries [][]ConceptID, opts Options) (*Batch, error) {
	return e.inner.NewBatchRDS(queries, e.withCache(opts))
}

// NewBatchSDS prepares a resumable batch of SDS queries; see NewBatchRDS.
func (e *Engine) NewBatchSDS(queryDocs [][]ConceptID, opts Options) (*Batch, error) {
	return e.inner.NewBatchSDS(queryDocs, e.withCache(opts))
}

// BatchRDS evaluates many RDS queries concurrently over a worker pool
// (workers <= 0 selects GOMAXPROCS). Results are in input order; the
// first error cancels the queries not yet started. Within a batch each
// query defaults to a serial engine (Options.Workers == 0 is treated as
// 1); set Options.Workers explicitly to stack intra-query parallelism on
// top.
func (e *Engine) BatchRDS(queries [][]ConceptID, opts Options, workers int) ([][]Result, []*Metrics, error) {
	return e.inner.BatchRDS(queries, e.withCache(opts), workers)
}

// BatchSDS evaluates many SDS queries concurrently.
func (e *Engine) BatchSDS(queryDocs [][]ConceptID, opts Options, workers int) ([][]Result, []*Metrics, error) {
	return e.inner.BatchSDS(queryDocs, e.withCache(opts), workers)
}

// BatchRDSContext is BatchRDS under a caller context: cancellation stops
// scheduling further queries and returns the context's error together
// with the partial output — queries that completed before the failure
// keep their results and Metrics (both non-nil); aborted or unscheduled
// queries have both slots nil.
func (e *Engine) BatchRDSContext(ctx context.Context, queries [][]ConceptID, opts Options, workers int) ([][]Result, []*Metrics, error) {
	return e.inner.BatchRDSContext(ctx, queries, e.withCache(opts), workers)
}

// BatchSDSContext is BatchSDS under a caller context.
func (e *Engine) BatchSDSContext(ctx context.Context, queryDocs [][]ConceptID, opts Options, workers int) ([][]Result, []*Metrics, error) {
	return e.inner.BatchSDSContext(ctx, queryDocs, e.withCache(opts), workers)
}

// FullScanRDS ranks by scanning the whole collection (the evaluation
// baseline; exact but slow). WithK selects the result count (default 10)
// and WithWorkers > 1 partitions the scan across a worker pool with
// results identical to the serial scan; other options are ignored — the
// baseline has no traversal to tune.
func (e *Engine) FullScanRDS(query []ConceptID, opts ...Option) ([]Result, *Metrics, error) {
	return e.fullScan(false, query, opts)
}

// FullScanSDS is the full-scan baseline for similarity queries, with the
// same options contract as FullScanRDS.
func (e *Engine) FullScanSDS(queryDoc []ConceptID, opts ...Option) ([]Result, *Metrics, error) {
	return e.fullScan(true, queryDoc, opts)
}

func (e *Engine) fullScan(sds bool, query []ConceptID, opts []Option) ([]Result, *Metrics, error) {
	// withCache here mirrors RDSContext/SDSContext: an engine-level cache
	// installed with EnableCache accelerates the scan (an explicit
	// WithCache still wins). Rankings are identical either way.
	o := e.withCache(core.NewOptions(opts...))
	kind := "scan_rds"
	if sds {
		kind = "scan_sds"
	}
	done := e.instrument(kind, &o)
	var (
		res []Result
		m   *Metrics
		err error
	)
	if sds {
		res, m, err = e.inner.FullScanSDS(query, o)
	} else {
		res, m, err = e.inner.FullScanRDS(query, o)
	}
	if done != nil {
		done(m, err)
	}
	return res, m, err
}

// SaveOntology writes o to path in the checksummed binary format.
func SaveOntology(path string, o *Ontology) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := o.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadOntology reads an ontology written by SaveOntology.
func LoadOntology(path string) (*Ontology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	o, err := ontology.ReadFrom(f)
	if err != nil {
		return nil, fmt.Errorf("conceptrank: load %s: %w", path, err)
	}
	return o, nil
}

// SaveCollection writes coll to path.
func SaveCollection(path string, coll *Collection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := coll.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCollection reads a collection written by SaveCollection.
func LoadCollection(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := corpus.ReadFrom(f)
	if err != nil {
		return nil, fmt.Errorf("conceptrank: load %s: %w", path, err)
	}
	return c, nil
}

// FindConcept looks a concept up by its primary term or any synonym
// (case-sensitive). The first call builds a term→concept map on the
// ontology (guarded by sync.Once, so concurrent callers are safe); every
// lookup afterwards is O(1). Ambiguous terms resolve exactly as the former
// linear scan did: lowest ConceptID wins, primary name before synonyms.
func FindConcept(o *Ontology, term string) (ConceptID, bool) {
	return o.LookupTerm(term)
}

// FindConcepts is the bulk form of FindConcept: ids[i] holds the concept
// for terms[i] and is only meaningful when found[i] is true.
func FindConcepts(o *Ontology, terms []string) (ids []ConceptID, found []bool) {
	ids = make([]ConceptID, len(terms))
	found = make([]bool, len(terms))
	for i, t := range terms {
		ids[i], found[i] = o.LookupTerm(t)
	}
	return ids, found
}
